//! The GARA reservation system.
//!
//! "GARA, a resource management architecture that supports flow-specific
//! QoS specification, secure immediate and advance co-reservation, online
//! monitoring/control, and policy-driven management of a variety of
//! resource types, including networks." (§4.2)
//!
//! Uniform API across resource types: the same [`Gara::reserve`] call makes
//! an immediate or advance reservation of network bandwidth, CPU, or
//! storage; the returned [`ResvId`] handle supports modify, cancel, and
//! monitoring (polling via [`Gara::status`] or callbacks via
//! [`Gara::subscribe`]). Admission control uses per-resource slot tables
//! (the bandwidth-broker role); enforcement calls resource-specific
//! operations: installing classifier rules and token-bucket policers on the
//! flow's edge router, granting DSRT CPU reservations, or debiting a
//! storage server's bandwidth table.

use crate::slot_table::{RejectReason, Rejected, SlotId, SlotTable};
use mpichgq_dsrt::ProcId;
use mpichgq_netsim::{
    depth_for, ChanId, DepthRule, Dscp, FlowSpec, Net, NodeId, NodeKind, PolicingAction, Proto,
    TimelineSource, TokenBucket,
};
use mpichgq_sim::{SimDelta, SimTime};
use mpichgq_tcp::{control_token, Controller, ControllerId, Stack};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Reservation handle ("an opaque object ... that allows the calling
/// program to modify, cancel, and monitor the reservation", §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResvId(pub u64);

/// Reservation lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Admitted for a future interval; not yet enforced.
    Pending,
    /// Currently enforced.
    Active,
    /// The interval ended.
    Expired,
    /// Cancelled by the holder.
    Cancelled,
    /// Revoked by the broker (preemption, policy change, fault injection)
    /// — the one teardown the holder did not ask for, and the signal the
    /// QoS agent's adaptation loop reacts to.
    Revoked,
    /// Enforcement failed at activation time.
    Failed,
}

/// A network-flow reservation request.
#[derive(Debug, Clone, Copy)]
pub struct NetworkRequest {
    pub src: NodeId,
    pub dst: NodeId,
    pub proto: Proto,
    /// `None` binds all ports between the host pair (how MPICH-GQ binds
    /// "all relevant flows" of a communicator link).
    pub src_port: Option<u16>,
    pub dst_port: Option<u16>,
    /// Premium bandwidth, on-the-wire bits per second.
    pub rate_bps: u64,
    /// Token-bucket depth rule for the edge policer (§4.3, §5.4).
    pub depth: DepthRule,
    /// Drop (paper testbed) or demote out-of-profile packets.
    pub action: PolicingAction,
    /// Also install an end-system shaper pacing the flow at the reserved
    /// rate (the paper's §5.4 alternative; exercised by our ablations).
    pub shape_at_source: bool,
}

impl NetworkRequest {
    pub fn flow_spec(&self) -> FlowSpec {
        FlowSpec {
            src: Some(self.src),
            dst: Some(self.dst),
            proto: Some(self.proto),
            src_port: self.src_port,
            dst_port: self.dst_port,
            dscp: None,
        }
    }
}

/// A DSRT CPU reservation request.
#[derive(Debug, Clone, Copy)]
pub struct CpuRequest {
    pub host: NodeId,
    pub proc: ProcId,
    /// Fraction of the CPU in `(0, 1]`.
    pub fraction: f64,
}

/// A DPSS-style storage-bandwidth reservation request.
#[derive(Debug, Clone)]
pub struct StorageRequest {
    pub server: String,
    pub bytes_per_sec: u64,
}

/// A request for one resource.
#[derive(Debug, Clone)]
pub enum Request {
    Network(NetworkRequest),
    Cpu(CpuRequest),
    Storage(StorageRequest),
}

/// When a reservation should begin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartSpec {
    Now,
    /// Advance reservation.
    At(SimTime),
}

/// Why a reservation was refused.
#[derive(Debug)]
pub enum ReserveError {
    /// A slot table on the path (or host/server) lacked capacity.
    Admission(Rejected),
    /// Network request between unreachable endpoints.
    NoRoute,
    /// Storage server not registered.
    UnknownServer(String),
    /// Invalid parameters (zero rate, fraction out of range, ...).
    Invalid(&'static str),
    /// Rejected by an injected fault ([`Gara::inject_rejections`]); the
    /// request itself was well-formed and might succeed on retry.
    Injected,
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::Admission(r) => write!(f, "admission control: {r}"),
            ReserveError::NoRoute => write!(f, "no route between endpoints"),
            ReserveError::UnknownServer(s) => write!(f, "unknown storage server {s}"),
            ReserveError::Invalid(m) => write!(f, "invalid request: {m}"),
            ReserveError::Injected => write!(f, "reservation rejected (injected fault)"),
        }
    }
}
impl std::error::Error for ReserveError {}

#[derive(Debug, Clone)]
enum SlotRef {
    Net(ChanId, SlotId),
    Cpu(NodeId, SlotId),
    Storage(String, SlotId),
}

/// Identity of one slot table, used to group co-reservation demands so
/// each table sees its share of the set as a single batch.
#[derive(Debug, PartialEq, Eq)]
enum TableKey {
    Net(ChanId),
    Cpu(NodeId),
    Storage(String),
}

/// One co-reservation demand against a table: requesting index within
/// the input set, window, and amount.
type Demand = (usize, SimTime, SimTime, u64);

#[derive(Debug, Default)]
enum Enforcement {
    #[default]
    None,
    Net {
        router: NodeId,
        rule: u64,
        shaper: Option<u64>,
    },
    Cpu,
}

struct Resv {
    req: Request,
    start: SimTime,
    end: SimTime,
    status: Status,
    slots: Vec<SlotRef>,
    enforcement: Enforcement,
}

/// CPU slot tables count in milli-fractions so they stay integral.
const CPU_UNITS: f64 = 1000.0;
/// DSRT's admission ceiling, in milli-fraction units.
const CPU_CAPACITY: u64 = (mpichgq_dsrt::MAX_RESERVABLE * CPU_UNITS) as u64;

/// The GARA system (one per simulation; installed as a `Stack` service).
pub struct Gara {
    resvs: HashMap<u64, Resv>,
    next_id: u64,
    /// Managed (bandwidth-brokered) channels: EF slot tables in bits/s.
    links: HashMap<ChanId, SlotTable>,
    /// Per-host CPU slot tables in milli-fraction units.
    cpus: HashMap<NodeId, SlotTable>,
    /// Storage servers: bandwidth tables in bytes/s.
    storage: HashMap<String, SlotTable>,
    events: Vec<(ResvId, Status)>,
    /// Min-heap of `(deadline, reservation)` — every pending activation
    /// and finite active expiry, possibly stale (cancelled/revoked
    /// reservations leave their entries behind; they are skipped lazily
    /// against the live record). Keeps [`Gara::advance`] and timer
    /// re-arming O(log n) instead of a scan over every reservation ever
    /// made — at control-plane scale the scan is quadratic.
    deadlines: BinaryHeap<Reverse<(SimTime, u64)>>,
    listeners: Vec<Box<dyn FnMut(ResvId, Status)>>,
    ctl: Option<ControllerId>,
    /// Pending fault-injected rejections: while nonzero, each `reserve`
    /// call fails with [`ReserveError::Injected`] and decrements it.
    inject_rejections: u32,
    /// Controller to ping (same sim-time) whenever a reservation is
    /// revoked, so an adaptation loop can react in event order.
    adapt_ctl: Option<ControllerId>,
}

impl Gara {
    pub fn new() -> Gara {
        Gara {
            resvs: HashMap::new(),
            next_id: 0,
            links: HashMap::new(),
            cpus: HashMap::new(),
            storage: HashMap::new(),
            events: Vec::new(),
            deadlines: BinaryHeap::new(),
            listeners: Vec::new(),
            ctl: None,
            inject_rejections: 0,
            adapt_ctl: None,
        }
    }

    // ------------------------------------------------------------------
    // Resource registration (the bandwidth-broker's configuration)
    // ------------------------------------------------------------------

    /// Put `chan` under admission control with `reservable_bps` of EF
    /// capacity.
    pub fn manage_chan(&mut self, chan: ChanId, reservable_bps: u64) {
        self.links.insert(chan, SlotTable::new(reservable_bps));
    }

    /// Manage every router-to-router channel, reserving at most
    /// `fraction` of each link's capacity for EF ("the number of expedited
    /// packets must be carefully limited", §2).
    pub fn manage_core_links(&mut self, net: &Net, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        for id in net.chan_ids() {
            let c = net.chan(id);
            let from_router = net.node(c.from).kind == NodeKind::Router;
            let to_router = net.node(c.to).kind == NodeKind::Router;
            if from_router && to_router {
                let cap = (c.cfg.bandwidth_bps as f64 * fraction) as u64;
                self.manage_chan(id, cap);
            }
        }
    }

    /// Register a DPSS-style storage server with an aggregate bandwidth.
    pub fn manage_storage(&mut self, server: &str, capacity_bytes_per_sec: u64) {
        self.storage
            .insert(server.to_owned(), SlotTable::new(capacity_bytes_per_sec));
    }

    pub fn managed_chan_count(&self) -> usize {
        self.links.len()
    }

    /// Reconfigure a managed channel's reservable capacity in place,
    /// keeping its admitted slots (the broker-side analogue of
    /// [`SlotTable::set_capacity`]). Returns false if the channel is not
    /// managed. Lowering below the committed peak leaves the table
    /// transiently overcommitted; auditors see it via [`Gara::slot_tables`].
    pub fn set_chan_capacity(&mut self, chan: ChanId, reservable_bps: u64) -> bool {
        match self.links.get_mut(&chan) {
            Some(t) => {
                t.set_capacity(reservable_bps);
                true
            }
            None => false,
        }
    }

    /// Managed network slot tables, for invariant auditors (qcheck checks
    /// peak ≤ capacity on every table after each scenario).
    pub fn slot_tables(&self) -> impl Iterator<Item = (ChanId, &SlotTable)> {
        self.links.iter().map(|(c, t)| (*c, t))
    }

    /// Per-host CPU slot tables, for invariant auditors.
    pub fn cpu_tables(&self) -> impl Iterator<Item = (NodeId, &SlotTable)> {
        self.cpus.iter().map(|(h, t)| (*h, t))
    }

    // ------------------------------------------------------------------
    // The uniform reservation API
    // ------------------------------------------------------------------

    /// Make an immediate or advance reservation. `duration = None` means
    /// "until cancelled".
    pub fn reserve(
        &mut self,
        net: &mut Net,
        req: Request,
        start: StartSpec,
        duration: Option<SimDelta>,
    ) -> Result<ResvId, ReserveError> {
        let now = net.now();
        let start_t = match start {
            StartSpec::Now => now,
            StartSpec::At(t) => t.max(now),
        };
        let end_t = match duration {
            Some(d) => start_t + d,
            None => SimTime::MAX,
        };
        if let Err(e) = self.validate(&req) {
            Self::count_reservation_reject(net, &e);
            return Err(e);
        }
        if self.inject_rejections > 0 {
            self.inject_rejections -= 1;
            Self::count_reservation_reject(net, &ReserveError::Injected);
            net.obs.metrics.add("gara.injected_rejections", 1);
            net.obs.trace.record(now, "gara.reject", self.next_id, -1);
            return Err(ReserveError::Injected);
        }
        let slots = match self.admit(net, &req, start_t, end_t) {
            Ok(s) => s,
            Err(e) => {
                Self::count_reservation_reject(net, &e);
                net.obs.trace.record(now, "gara.reject", self.next_id, 0);
                return Err(e);
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        self.resvs.insert(
            id,
            Resv {
                req,
                start: start_t,
                end: end_t,
                status: Status::Pending,
                slots,
                enforcement: Enforcement::None,
            },
        );
        let rid = ResvId(id);
        net.obs.metrics.add("gara.reservations_granted", 1);
        let granted_amount = match &self.resvs[&id].req {
            Request::Network(n) => n.rate_bps as i64,
            Request::Cpu(c) => (c.fraction * 1000.0) as i64,
            Request::Storage(_) => 0,
        };
        net.obs.trace.record(now, "gara.grant", id, granted_amount);
        if start_t <= now {
            self.activate(net, rid);
        } else {
            self.deadlines.push(Reverse((start_t, id)));
            self.emit(rid, Status::Pending);
        }
        self.arm(net);
        Ok(rid)
    }

    /// Atomic co-reservation: every request is admitted or none is
    /// ("co-reservation of CPU, network, and other resources needed for
    /// end-to-end performance", §1).
    ///
    /// Unlike a loop over [`Gara::reserve`] (the old implementation,
    /// which granted then cancelled on failure — emitting spurious
    /// grant/cancel events and re-running admission during rollback),
    /// this admits all requests *first*: demands are grouped per slot
    /// table and each table decides its group all-or-nothing in one
    /// [`SlotTable::try_insert_batch`] pass. No reservation object
    /// exists, no event fires, and no enforcement is touched unless the
    /// whole set is admitted.
    pub fn co_reserve(
        &mut self,
        net: &mut Net,
        reqs: Vec<(Request, StartSpec, Option<SimDelta>)>,
    ) -> Result<Vec<ResvId>, ReserveError> {
        let now = net.now();
        // Phase 0: validate everything before any slot moves.
        for (req, _, _) in &reqs {
            if let Err(e) = self.validate(req) {
                Self::count_reservation_reject(net, &e);
                return Err(e);
            }
        }
        if !reqs.is_empty() && self.inject_rejections > 0 {
            self.inject_rejections -= 1;
            Self::count_reservation_reject(net, &ReserveError::Injected);
            net.obs.metrics.add("gara.injected_rejections", 1);
            net.obs.trace.record(now, "gara.reject", self.next_id, -1);
            return Err(ReserveError::Injected);
        }
        // Phase 1: resolve every request to per-table demands, grouped by
        // table in first-seen order (so SlotIds come out exactly as a
        // sequential admission would have assigned them).
        let windows: Vec<(SimTime, SimTime)> = reqs
            .iter()
            .map(|(_, start, duration)| {
                let start_t = match start {
                    StartSpec::Now => now,
                    StartSpec::At(t) => (*t).max(now),
                };
                let end_t = match duration {
                    Some(d) => start_t + *d,
                    None => SimTime::MAX,
                };
                (start_t, end_t)
            })
            .collect();
        let mut groups: Vec<(TableKey, Vec<Demand>)> = Vec::new();
        let push_demand = |groups: &mut Vec<(TableKey, Vec<Demand>)>,
                           key: TableKey,
                           demand: Demand| {
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, items)) => items.push(demand),
                None => groups.push((key, vec![demand])),
            }
        };
        for (i, (req, _, _)) in reqs.iter().enumerate() {
            let (start_t, end_t) = windows[i];
            match req {
                Request::Network(n) => {
                    let Some(path) = net.path_chans(n.src, n.dst) else {
                        let e = ReserveError::NoRoute;
                        Self::count_reservation_reject(net, &e);
                        net.obs.trace.record(now, "gara.reject", self.next_id, 0);
                        return Err(e);
                    };
                    for chan in path {
                        if self.links.contains_key(&chan) {
                            push_demand(
                                &mut groups,
                                TableKey::Net(chan),
                                (i, start_t, end_t, n.rate_bps),
                            );
                        }
                    }
                }
                Request::Cpu(c) => {
                    self.cpus
                        .entry(c.host)
                        .or_insert_with(|| SlotTable::new(CPU_CAPACITY));
                    let amount = (c.fraction * CPU_UNITS).round() as u64;
                    push_demand(
                        &mut groups,
                        TableKey::Cpu(c.host),
                        (i, start_t, end_t, amount),
                    );
                }
                Request::Storage(s) => {
                    if !self.storage.contains_key(&s.server) {
                        let e = ReserveError::UnknownServer(s.server.clone());
                        Self::count_reservation_reject(net, &e);
                        net.obs.trace.record(now, "gara.reject", self.next_id, 0);
                        return Err(e);
                    }
                    push_demand(
                        &mut groups,
                        TableKey::Storage(s.server.clone()),
                        (i, start_t, end_t, s.bytes_per_sec),
                    );
                }
            }
        }
        // Phase 2: batch-admit per table; on any refusal, release the
        // groups already admitted (plain removes — infallible) and reject.
        let mut slots_per_req: Vec<Vec<SlotRef>> = reqs.iter().map(|_| Vec::new()).collect();
        let mut admitted: Vec<SlotRef> = Vec::new();
        for (key, items) in &groups {
            let batch: Vec<(SimTime, SimTime, u64)> =
                items.iter().map(|&(_, s, e, a)| (s, e, a)).collect();
            let table = match key {
                TableKey::Net(c) => self.links.get_mut(c).expect("grouped from managed set"),
                TableKey::Cpu(h) => self.cpus.get_mut(h).expect("grouped from managed set"),
                TableKey::Storage(s) => self.storage.get_mut(s).expect("grouped from managed set"),
            };
            match table.try_insert_batch(&batch) {
                Ok(ids) => {
                    for (&(req_idx, ..), sid) in items.iter().zip(ids) {
                        let sref = match key {
                            TableKey::Net(c) => SlotRef::Net(*c, sid),
                            TableKey::Cpu(h) => SlotRef::Cpu(*h, sid),
                            TableKey::Storage(s) => SlotRef::Storage(s.clone(), sid),
                        };
                        slots_per_req[req_idx].push(sref.clone());
                        admitted.push(sref);
                    }
                }
                Err(rej) => {
                    for s in &admitted {
                        self.release_slot(s);
                    }
                    let e = ReserveError::Admission(rej);
                    Self::count_reservation_reject(net, &e);
                    net.obs.trace.record(now, "gara.reject", self.next_id, 0);
                    return Err(e);
                }
            }
        }
        // Phase 3: the whole set is admitted — create and (when due)
        // activate each reservation in input order, as reserve() would.
        let mut granted = Vec::new();
        for ((req, _, _), ((start_t, end_t), slots)) in
            reqs.into_iter().zip(windows.into_iter().zip(slots_per_req))
        {
            let id = self.next_id;
            self.next_id += 1;
            self.resvs.insert(
                id,
                Resv {
                    req,
                    start: start_t,
                    end: end_t,
                    status: Status::Pending,
                    slots,
                    enforcement: Enforcement::None,
                },
            );
            let rid = ResvId(id);
            net.obs.metrics.add("gara.reservations_granted", 1);
            let granted_amount = match &self.resvs[&id].req {
                Request::Network(n) => n.rate_bps as i64,
                Request::Cpu(c) => (c.fraction * 1000.0) as i64,
                Request::Storage(_) => 0,
            };
            net.obs.trace.record(now, "gara.grant", id, granted_amount);
            if start_t <= now {
                self.activate(net, rid);
            } else {
                self.emit(rid, Status::Pending);
            }
            self.arm(net);
            granted.push(rid);
        }
        Ok(granted)
    }

    /// Cancel a reservation, releasing admission state and enforcement.
    pub fn cancel(&mut self, net: &mut Net, id: ResvId) {
        let Some(r) = self.resvs.get(&id.0) else {
            return;
        };
        match r.status {
            Status::Active => {
                net.obs.metrics.add("gara.cancels", 1);
                self.deactivate(net, id, Status::Cancelled);
            }
            Status::Pending => {
                net.obs.metrics.add("gara.cancels", 1);
                self.release_slots(id);
                self.set_status(id, Status::Cancelled);
            }
            _ => {}
        }
    }

    /// Revoke a reservation from the broker side: the same teardown as
    /// [`Gara::cancel`] but with final status [`Status::Revoked`], and the
    /// adaptation listener (if any) is scheduled to run at the current sim
    /// time so the holder can renegotiate. Fault plans and policy
    /// preemption both funnel through here.
    pub fn revoke(&mut self, net: &mut Net, id: ResvId) {
        let Some(r) = self.resvs.get(&id.0) else {
            return;
        };
        match r.status {
            Status::Active => {
                self.deactivate(net, id, Status::Revoked);
            }
            Status::Pending => {
                self.release_slots(id);
                self.set_status(id, Status::Revoked);
            }
            _ => return,
        }
        net.obs.metrics.add("gara.revocations", 1);
        let now = net.now();
        net.obs.trace.record(now, "gara.revoke", id.0, 0);
        if let Some(ctl) = self.adapt_ctl {
            net.schedule_control(now, control_token(ctl, 0));
        }
    }

    /// Arm `n` fault-injected rejections: the next `n` calls to
    /// [`Gara::reserve`] fail with [`ReserveError::Injected`] regardless
    /// of capacity (exercises the agent's retry/backoff path).
    pub fn inject_rejections(&mut self, n: u32) {
        self.inject_rejections += n;
    }

    /// Register the controller to wake (at the same sim time, in event
    /// order) whenever a reservation is revoked.
    pub fn set_adaptation_listener(&mut self, ctl: ControllerId) {
        self.adapt_ctl = Some(ctl);
    }

    /// Modify the rate of an active/pending network reservation in place.
    pub fn modify_network_rate(
        &mut self,
        net: &mut Net,
        id: ResvId,
        new_rate_bps: u64,
    ) -> Result<(), ReserveError> {
        let r = self.modify_network_rate_inner(net, id, new_rate_bps);
        if let Err(e) = &r {
            Self::count_modify_reject(net, e);
        }
        r
    }

    fn modify_network_rate_inner(
        &mut self,
        net: &mut Net,
        id: ResvId,
        new_rate_bps: u64,
    ) -> Result<(), ReserveError> {
        if new_rate_bps == 0 {
            return Err(ReserveError::Invalid("zero rate"));
        }
        let r = self
            .resvs
            .get(&id.0)
            .filter(|r| matches!(r.status, Status::Active | Status::Pending))
            .ok_or(ReserveError::Invalid("no such modifiable reservation"))?;
        let Request::Network(nreq) = &r.req else {
            return Err(ReserveError::Invalid("not a network reservation"));
        };
        let depth_rule = nreq.depth;
        // First pass: try to resize every slot; roll back on failure.
        let mut resized: Vec<(ChanId, SlotId, u64)> = Vec::new();
        let slot_list: Vec<(ChanId, SlotId)> = r
            .slots
            .iter()
            .filter_map(|s| match s {
                SlotRef::Net(c, sid) => Some((*c, *sid)),
                _ => None,
            })
            .collect();
        let old_rate = nreq.rate_bps;
        for (chan, sid) in &slot_list {
            let refusal = match self.links.get_mut(chan) {
                // A managed channel can disappear under us (broker
                // reconfiguration); that refuses the modify, it must not
                // abort the process.
                None => Some(ReserveError::Invalid("managed channel vanished")),
                Some(table) => match table.try_resize(*sid, new_rate_bps) {
                    Ok(()) => None,
                    Err(rej) => Some(ReserveError::Admission(rej)),
                },
            };
            match refusal {
                None => resized.push((*chan, *sid, old_rate)),
                Some(err) => {
                    // Roll back infallibly: the old amounts were admitted
                    // before, so `restore` reinstates them without
                    // re-running admission (which could refuse, e.g. after
                    // a capacity-lowering reconfiguration mid-sequence).
                    for (c, s, old) in resized {
                        if let Some(t) = self.links.get_mut(&c) {
                            t.restore(s, old);
                        }
                    }
                    return Err(err);
                }
            }
        }
        // Commit: update the request and reconfigure the live policer.
        let r = self.resvs.get_mut(&id.0).unwrap();
        if let Request::Network(nreq) = &mut r.req {
            nreq.rate_bps = new_rate_bps;
        }
        if let Enforcement::Net { router, rule, .. } = r.enforcement {
            let depth = depth_for(depth_rule, new_rate_bps);
            let now = net.now();
            let mut tb = TokenBucket::new(new_rate_bps, depth);
            tb.reconfigure(now, new_rate_bps, depth);
            net.node_mut(router).classifier.set_policer(rule, Some(tb));
        }
        net.obs.metrics.add("gara.modifies", 1);
        let now = net.now();
        net.obs
            .trace
            .record(now, "gara.modify_rate", id.0, new_rate_bps as i64);
        Ok(())
    }

    /// Modify the CPU fraction of an active/pending CPU reservation, with
    /// the same all-or-nothing admission as a fresh request ("essentially
    /// the same calls are used" across resource types, §4.2).
    pub fn modify_cpu_fraction(
        &mut self,
        net: &mut Net,
        id: ResvId,
        new_fraction: f64,
    ) -> Result<(), ReserveError> {
        let r = self.modify_cpu_fraction_inner(net, id, new_fraction);
        if let Err(e) = &r {
            Self::count_modify_reject(net, e);
        }
        r
    }

    fn modify_cpu_fraction_inner(
        &mut self,
        net: &mut Net,
        id: ResvId,
        new_fraction: f64,
    ) -> Result<(), ReserveError> {
        if !(new_fraction > 0.0 && new_fraction <= 1.0) {
            return Err(ReserveError::Invalid("CPU fraction out of (0,1]"));
        }
        let r = self
            .resvs
            .get(&id.0)
            .filter(|r| matches!(r.status, Status::Active | Status::Pending))
            .ok_or(ReserveError::Invalid("no such modifiable reservation"))?;
        let Request::Cpu(creq) = r.req.clone() else {
            return Err(ReserveError::Invalid("not a CPU reservation"));
        };
        let slot = r.slots.iter().find_map(|s| match s {
            SlotRef::Cpu(h, sid) => Some((*h, *sid)),
            _ => None,
        });
        let Some((host, sid)) = slot else {
            return Err(ReserveError::Invalid("reservation has no CPU slot"));
        };
        let amount = (new_fraction * CPU_UNITS).round() as u64;
        self.cpus
            .get_mut(&host)
            .ok_or(ReserveError::Invalid("CPU table vanished"))?
            .try_resize(sid, amount)
            .map_err(ReserveError::Admission)?;
        let active = self.resvs[&id.0].status == Status::Active;
        if let Request::Cpu(c) = &mut self.resvs.get_mut(&id.0).unwrap().req {
            c.fraction = new_fraction;
        }
        if active {
            net.cpu_set_reservation(creq.host, creq.proc, Some(new_fraction))
                .map_err(|_| ReserveError::Invalid("DSRT refused the new fraction"))?;
        }
        net.obs.metrics.add("gara.modifies", 1);
        let now = net.now();
        net.obs
            .trace
            .record(now, "gara.modify_cpu", id.0, (new_fraction * 1000.0) as i64);
        Ok(())
    }

    pub fn status(&self, id: ResvId) -> Option<Status> {
        self.resvs.get(&id.0).map(|r| r.status)
    }

    /// Drain status-change events (the polling interface).
    pub fn take_events(&mut self) -> Vec<(ResvId, Status)> {
        std::mem::take(&mut self.events)
    }

    /// Register a callback invoked on every status change (the callback
    /// interface: "a user's function is called every time the state of the
    /// reservation changes in an interesting way", §4.2).
    pub fn subscribe(&mut self, f: Box<dyn FnMut(ResvId, Status)>) {
        self.listeners.push(f);
    }

    /// Free EF capacity on a managed channel over a window (for programs
    /// that "select from among alternative resources, according to their
    /// availability", §4.2).
    pub fn available_on(&self, chan: ChanId, start: SimTime, end: SimTime) -> Option<u64> {
        self.links.get(&chan).map(|t| t.available(start, end))
    }

    /// Free EF capacity along the whole path from `src` to `dst` over a
    /// window: the minimum across every managed channel on the path.
    /// Returns `None` if the endpoints are unreachable; unmanaged paths
    /// report `u64::MAX` (no broker limit applies).
    pub fn available_on_path(
        &self,
        net: &Net,
        src: NodeId,
        dst: NodeId,
        start: SimTime,
        end: SimTime,
    ) -> Option<u64> {
        let path = net.path_chans(src, dst)?;
        let mut avail = u64::MAX;
        for chan in path {
            if let Some(t) = self.links.get(&chan) {
                avail = avail.min(t.available(start, end));
            }
        }
        Some(avail)
    }

    // ------------------------------------------------------------------
    // Timer driving
    // ------------------------------------------------------------------

    pub(crate) fn set_controller_id(&mut self, id: ControllerId) {
        self.ctl = Some(id);
    }

    /// Earliest pending activation or active expiry.
    ///
    /// This is the query form (a full scan, O(reservations)); the timer
    /// path uses the deadline heap instead, which answers the same
    /// question in O(log n) amortized.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.resvs
            .values()
            .filter_map(|r| match r.status {
                Status::Pending => Some(r.start),
                Status::Active if r.end != SimTime::MAX => Some(r.end),
                _ => None,
            })
            .min()
    }

    /// Is a popped/peeked heap entry still the live deadline of its
    /// reservation? Cancelled, revoked, expired, and already-activated
    /// records invalidate their old entries; they are discarded here.
    fn deadline_live(&self, t: SimTime, id: u64) -> bool {
        match self.resvs.get(&id) {
            Some(r) => match r.status {
                Status::Pending => r.start == t,
                Status::Active => r.end == t,
                _ => false,
            },
            None => false,
        }
    }

    /// Activate/expire everything due at `now` in `(deadline, id)`
    /// order, then re-arm the timer. Each reservation contributes at
    /// most two heap entries over its lifetime (activation, expiry), so
    /// this is O(log n) per transition regardless of how many finished
    /// reservations the broker remembers.
    pub fn advance(&mut self, net: &mut Net) {
        let now = net.now();
        while let Some(&Reverse((t, id))) = self.deadlines.peek() {
            if t > now {
                break;
            }
            self.deadlines.pop();
            if !self.deadline_live(t, id) {
                continue; // stale: superseded or already terminal
            }
            let rid = ResvId(id);
            match self.resvs[&id].status {
                // Activation pushes the expiry entry, which this same
                // loop then drains if it is already due.
                Status::Pending => self.activate(net, rid),
                Status::Active => self.deactivate(net, rid, Status::Expired),
                _ => {}
            }
        }
        self.arm(net);
    }

    fn arm(&mut self, net: &mut Net) {
        let Some(ctl) = self.ctl else {
            return;
        };
        while let Some(&Reverse((t, id))) = self.deadlines.peek() {
            if self.deadline_live(t, id) {
                net.schedule_control(t.max(net.now()), control_token(ctl, 0));
                return;
            }
            self.deadlines.pop();
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Per-reason reject counter key, so benchmarks and operators can
    /// break refusals down by cause instead of one opaque total.
    fn reject_reason_key(e: &ReserveError) -> &'static str {
        match e {
            ReserveError::Admission(r) => match r.reason {
                RejectReason::OverCapacity => "gara.rejects.over_capacity",
                RejectReason::UnknownSlot => "gara.rejects.unknown_slot",
            },
            ReserveError::NoRoute => "gara.rejects.no_route",
            ReserveError::UnknownServer(_) => "gara.rejects.unknown_server",
            ReserveError::Invalid(_) => "gara.rejects.invalid",
            ReserveError::Injected => "gara.rejects.injected",
        }
    }

    /// Count a refused reservation: the lifecycle total plus the
    /// per-reason breakdown.
    fn count_reservation_reject(net: &mut Net, e: &ReserveError) {
        net.obs.metrics.add("gara.reservations_rejected", 1);
        net.obs.metrics.add(Self::reject_reason_key(e), 1);
    }

    /// Count a refused modify. Deliberately *not* `reservations_rejected`:
    /// that counter means "a reservation request was refused" and
    /// participates in qcheck run fingerprints; in-place modifies keep
    /// their own total alongside the shared per-reason breakdown.
    fn count_modify_reject(net: &mut Net, e: &ReserveError) {
        net.obs.metrics.add("gara.modifies_rejected", 1);
        net.obs.metrics.add(Self::reject_reason_key(e), 1);
    }

    fn validate(&self, req: &Request) -> Result<(), ReserveError> {
        match req {
            Request::Network(n) => {
                if n.rate_bps == 0 {
                    return Err(ReserveError::Invalid("zero rate"));
                }
            }
            Request::Cpu(c) => {
                if !(c.fraction > 0.0 && c.fraction <= 1.0) {
                    return Err(ReserveError::Invalid("CPU fraction out of (0,1]"));
                }
            }
            Request::Storage(s) => {
                if s.bytes_per_sec == 0 {
                    return Err(ReserveError::Invalid("zero storage bandwidth"));
                }
            }
        }
        Ok(())
    }

    fn admit(
        &mut self,
        net: &Net,
        req: &Request,
        start: SimTime,
        end: SimTime,
    ) -> Result<Vec<SlotRef>, ReserveError> {
        let mut slots = Vec::new();
        let result = (|| -> Result<(), ReserveError> {
            match req {
                Request::Network(n) => {
                    let path = net.path_chans(n.src, n.dst).ok_or(ReserveError::NoRoute)?;
                    for chan in path {
                        if let Some(table) = self.links.get_mut(&chan) {
                            let sid = table
                                .try_insert(start, end, n.rate_bps)
                                .map_err(ReserveError::Admission)?;
                            slots.push(SlotRef::Net(chan, sid));
                        }
                    }
                    Ok(())
                }
                Request::Cpu(c) => {
                    let table = self
                        .cpus
                        .entry(c.host)
                        .or_insert_with(|| SlotTable::new(CPU_CAPACITY));
                    let amount = (c.fraction * CPU_UNITS).round() as u64;
                    let sid = table
                        .try_insert(start, end, amount)
                        .map_err(ReserveError::Admission)?;
                    slots.push(SlotRef::Cpu(c.host, sid));
                    Ok(())
                }
                Request::Storage(s) => {
                    let table = self
                        .storage
                        .get_mut(&s.server)
                        .ok_or_else(|| ReserveError::UnknownServer(s.server.clone()))?;
                    let sid = table
                        .try_insert(start, end, s.bytes_per_sec)
                        .map_err(ReserveError::Admission)?;
                    slots.push(SlotRef::Storage(s.server.clone(), sid));
                    Ok(())
                }
            }
        })();
        match result {
            Ok(()) => Ok(slots),
            Err(e) => {
                // Roll back partial admissions.
                for s in slots {
                    self.release_slot(&s);
                }
                Err(e)
            }
        }
    }

    fn release_slot(&mut self, s: &SlotRef) {
        match s {
            SlotRef::Net(c, sid) => {
                if let Some(t) = self.links.get_mut(c) {
                    t.remove(*sid);
                }
            }
            SlotRef::Cpu(h, sid) => {
                if let Some(t) = self.cpus.get_mut(h) {
                    t.remove(*sid);
                }
            }
            SlotRef::Storage(name, sid) => {
                if let Some(t) = self.storage.get_mut(name) {
                    t.remove(*sid);
                }
            }
        }
    }

    fn release_slots(&mut self, id: ResvId) {
        let slots = std::mem::take(&mut self.resvs.get_mut(&id.0).unwrap().slots);
        for s in &slots {
            self.release_slot(s);
        }
    }

    fn activate(&mut self, net: &mut Net, id: ResvId) {
        let r = self.resvs.get_mut(&id.0).unwrap();
        let enforcement = match &r.req {
            Request::Network(n) => {
                let Some(path) = net.path_chans(n.src, n.dst) else {
                    self.set_status(id, Status::Failed);
                    return;
                };
                // The edge router is the first router on the path.
                let router = net.chan(path[0]).to;
                debug_assert_eq!(net.node(router).kind, NodeKind::Router);
                let depth = depth_for(n.depth, n.rate_bps);
                let rule = net.node_mut(router).classifier.install(
                    n.flow_spec(),
                    Dscp::Ef,
                    Some(TokenBucket::new(n.rate_bps, depth)),
                    n.action,
                );
                let shaper = if n.shape_at_source {
                    Some(net.install_shaper(
                        n.src,
                        n.flow_spec(),
                        TokenBucket::new(n.rate_bps, depth),
                    ))
                } else {
                    None
                };
                Enforcement::Net {
                    router,
                    rule,
                    shaper,
                }
            }
            Request::Cpu(c) => {
                match net.cpu_set_reservation(c.host, c.proc, Some(c.fraction)) {
                    Ok(()) => Enforcement::Cpu,
                    Err(_) => {
                        // Slot-table admission should have prevented this.
                        self.release_slots(id);
                        self.set_status(id, Status::Failed);
                        return;
                    }
                }
            }
            Request::Storage(_) => Enforcement::None, // accounting only
        };
        let r = self.resvs.get_mut(&id.0).unwrap();
        r.enforcement = enforcement;
        let end = r.end;
        if end != SimTime::MAX {
            self.deadlines.push(Reverse((end, id.0)));
        }
        let now = net.now();
        net.obs.trace.record(now, "gara.active", id.0, 0);
        self.set_status(id, Status::Active);
    }

    fn deactivate(&mut self, net: &mut Net, id: ResvId, final_status: Status) {
        let r = self.resvs.get_mut(&id.0).unwrap();
        let enforcement = std::mem::take(&mut r.enforcement);
        let cpu_req = match &r.req {
            Request::Cpu(c) => Some(*c),
            _ => None,
        };
        match enforcement {
            Enforcement::Net {
                router,
                rule,
                shaper,
            } => {
                net.node_mut(router).classifier.remove(rule);
                if let Some(sid) = shaper {
                    let src = match &self.resvs[&id.0].req {
                        Request::Network(n) => n.src,
                        _ => unreachable!(),
                    };
                    net.remove_shaper(src, sid);
                }
            }
            Enforcement::Cpu => {
                let c = cpu_req.expect("cpu enforcement without cpu request");
                let _ = net.cpu_set_reservation(c.host, c.proc, None);
            }
            Enforcement::None => {}
        }
        self.release_slots(id);
        let now = net.now();
        net.obs.trace.record(now, "gara.deactivate", id.0, 0);
        self.set_status(id, final_status);
    }

    fn set_status(&mut self, id: ResvId, status: Status) {
        self.resvs.get_mut(&id.0).unwrap().status = status;
        self.emit(id, status);
    }

    fn emit(&mut self, id: ResvId, status: Status) {
        self.events.push((id, status));
        for l in &mut self.listeners {
            l(id, status);
        }
    }
}

impl Default for Gara {
    fn default() -> Self {
        Self::new()
    }
}

/// Timer driver: forwards GARA's scheduled deadlines back into
/// [`Gara::advance`]. Registered by [`install`].
struct GaraDriver;

impl Controller for GaraDriver {
    fn on_control(&mut self, _payload: u64, net: &mut Net, stack: &mut Stack) {
        let Some(mut g) = stack.take_service::<Gara>() else {
            return;
        };
        g.advance(net);
        stack.put_service_box(g);
    }
}

impl TimelineSource for Gara {
    /// Control-plane occupancy series: standing slots across every managed
    /// table, the pending-deadline heap depth (stale entries included —
    /// that *is* the heap the timer driver pays for), and the aggregate
    /// EF load currently admitted on managed links. Reservation-rate
    /// series (grants, rejects) come for free from the live `gara.*`
    /// registry counters the sampler sweeps.
    fn timeline_sample(&mut self, net: &mut Net, at: SimTime) {
        let standing: usize = self
            .links
            .values()
            .chain(self.cpus.values())
            .chain(self.storage.values())
            .map(SlotTable::len)
            .sum();
        net.timeline_record_gauge("gara.slots.standing", standing as f64);
        net.timeline_record_gauge("gara.deadlines.pending", self.deadlines.len() as f64);
        let reserved: u64 = self.links.values().map(|t| t.load_at(at)).sum();
        net.timeline_record_gauge("gara.links.reserved_bps", reserved as f64);
    }
}

/// Install `gara` as a stack service with its timer driver attached.
pub fn install(stack: &mut Stack, mut gara: Gara) {
    let id = stack.add_controller(Box::new(GaraDriver));
    gara.set_controller_id(id);
    stack.insert_sampled_service(gara);
}
