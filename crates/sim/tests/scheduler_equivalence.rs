//! Property: the calendar queue and the binary heap are observably
//! identical schedulers. Any interleaving of `schedule` / `pop` /
//! `pop_until` — including same-timestamp bursts, far-future timers, and
//! horizons that land between events — produces byte-identical pop
//! sequences, clocks, and processed counts. This equivalence is what lets
//! the calendar queue be the default backend.

use mpichgq_sim::{Engine, SchedulerKind, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule a burst of events `delta` ns after the current clock.
    /// `burst` > 1 exercises FIFO tie-breaking at one timestamp.
    Schedule { delta: u64, burst: u8 },
    /// Pop one event.
    Pop,
    /// Pop with a horizon `delta` ns past the current clock.
    PopUntil { delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2_000, 1u8..6).prop_map(|(delta, burst)| Op::Schedule { delta, burst }),
        // Occasional far-future timers stress the calendar's fallback scan.
        (1_000_000_000u64..30_000_000_000, 1u8..2)
            .prop_map(|(delta, burst)| Op::Schedule { delta, burst }),
        (0u64..1).prop_map(|_| Op::Pop),
        (0u64..3_000).prop_map(|delta| Op::PopUntil { delta }),
    ]
}

/// Run one op against an engine, returning an observation string capturing
/// everything externally visible about the step.
fn step(e: &mut Engine<u64>, op: &Op, payload: &mut u64) -> String {
    match op {
        Op::Schedule { delta, burst } => {
            for _ in 0..*burst {
                let at = SimTime::from_nanos(e.now().as_nanos().saturating_add(*delta));
                e.schedule(at, *payload);
                *payload += 1;
            }
            format!("sched len={}", e.len())
        }
        Op::Pop => format!("pop {:?} now={} peek={:?}", e.pop(), e.now(), e.peek_time()),
        Op::PopUntil { delta } => {
            let limit = SimTime::from_nanos(e.now().as_nanos().saturating_add(*delta));
            format!(
                "pop_until {:?} now={} peek={:?}",
                e.pop_until(limit),
                e.now(),
                e.peek_time()
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn calendar_matches_heap_observably(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut heap: Engine<u64> = Engine::with_scheduler(SchedulerKind::Heap);
        let mut cal: Engine<u64> = Engine::with_scheduler(SchedulerKind::Calendar);
        let (mut ph, mut pc) = (0u64, 0u64);
        for (i, op) in ops.iter().enumerate() {
            let oh = step(&mut heap, op, &mut ph);
            let oc = step(&mut cal, op, &mut pc);
            prop_assert_eq!(&oh, &oc, "divergence at op {}: {:?}", i, op);
        }
        // Drain both to the end: full pop sequences must match too.
        loop {
            let h = heap.pop();
            let c = cal.pop();
            prop_assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
        prop_assert_eq!(heap.processed(), cal.processed());
        prop_assert_eq!(heap.now(), cal.now());
    }
}

/// A dense deterministic workload with adversarial structure: interleaved
/// bursts, identical timestamps across bursts, and a resize-forcing ramp.
#[test]
fn calendar_matches_heap_on_dense_ramp() {
    let mut heap: Engine<u64> = Engine::with_scheduler(SchedulerKind::Heap);
    let mut cal: Engine<u64> = Engine::with_scheduler(SchedulerKind::Calendar);
    for e in [&mut heap, &mut cal] {
        // Multiplicative-hash timestamps: scattered, with collisions.
        for i in 0..50_000u64 {
            let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
            e.schedule(SimTime::from_nanos(t), i);
        }
    }
    loop {
        let h = heap.pop();
        assert_eq!(h, cal.pop());
        if h.is_none() {
            break;
        }
    }
    assert_eq!(heap.processed(), 50_000);
    assert_eq!(cal.processed(), 50_000);
}
