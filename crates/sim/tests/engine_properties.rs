//! Property tests of the event kernel: global time ordering, FIFO
//! tie-breaking, and horizon semantics for arbitrary schedules.

use mpichgq_sim::{Engine, SimTime, ThroughputMeter, TimeSeries};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Events always pop in non-decreasing time order, and same-time events
    /// pop in insertion order, for any schedule (including schedules built
    /// incrementally while popping).
    #[test]
    fn pops_ordered_with_fifo_ties(
        times in proptest::collection::vec(0u64..1_000, 1..300),
        extra in proptest::collection::vec(0u64..1_000, 0..50),
    ) {
        let mut e: Engine<(u64, usize)> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        let mut popped = 0usize;
        let mut extra_iter = extra.iter();
        while let Some((at, (t, seq))) = e.pop() {
            prop_assert!(at >= last_time, "time went backwards");
            prop_assert_eq!(at, SimTime::from_micros(t));
            if at == last_time {
                if let Some(prev) = last_seq_at_time {
                    // Ties among the initial batch pop in insertion order.
                    if seq < times.len() && prev < times.len() {
                        prop_assert!(seq > prev, "FIFO violated: {seq} after {prev}");
                    }
                }
                last_seq_at_time = Some(seq);
            } else {
                last_seq_at_time = Some(seq);
            }
            last_time = at;
            popped += 1;
            // Occasionally schedule more events at or after `now`.
            if let Some(&x) = extra_iter.next() {
                let at2 = at + mpichgq_sim::SimDelta::from_micros(x);
                e.schedule(at2, (at2.as_nanos() / 1000, usize::MAX));
            }
        }
        prop_assert_eq!(popped, times.len() + extra.len().min(times.len() + extra.len()));
    }

    /// `pop_until` never returns events beyond the limit and always leaves
    /// the clock at exactly max(limit, last event time ≤ limit).
    #[test]
    fn pop_until_horizon(times in proptest::collection::vec(0u64..1_000, 0..100), limit in 0u64..1_000) {
        let mut e: Engine<u64> = Engine::new();
        for &t in &times {
            e.schedule(SimTime::from_micros(t), t);
        }
        let lim = SimTime::from_micros(limit);
        let mut below = 0;
        while let Some((at, _)) = e.pop_until(lim) {
            prop_assert!(at <= lim);
            below += 1;
        }
        prop_assert_eq!(below, times.iter().filter(|&&t| t <= limit).count());
        prop_assert_eq!(e.now(), lim);
        prop_assert_eq!(e.len(), times.len() - below);
    }

    /// The throughput meter conserves bytes: the bucketed series integrates
    /// back to the total, for arbitrary arrival patterns.
    #[test]
    fn meter_conserves_bytes(
        arrivals in proptest::collection::vec((0u64..5_000, 1u64..10_000), 1..200),
        bucket_ms in 1u64..500,
    ) {
        let bucket = mpichgq_sim::SimDelta::from_millis(bucket_ms);
        let mut m = ThroughputMeter::new(bucket);
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for (gap_us, n) in arrivals {
            now += mpichgq_sim::SimDelta::from_micros(gap_us);
            m.on_bytes(now, n);
            total += n;
        }
        prop_assert_eq!(m.total_bytes(), total);
        let end = now + bucket; // close the last bucket
        let series: TimeSeries = m.finish(end);
        let integrated: f64 = series
            .points()
            .iter()
            .map(|&(_, kbps)| kbps * 1_000.0 / 8.0 * bucket.as_secs_f64())
            .sum();
        prop_assert!((integrated - total as f64).abs() < 1.0,
            "series integrates to {integrated}, sent {total}");
    }
}
