//! # mpichgq-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the MPICH-GQ reproduction: an integer-nanosecond clock,
//! a generic time-ordered event queue with deterministic tie-breaking, a
//! reproducible PRNG, and time-series recording utilities used to regenerate
//! the paper's figures.
//!
//! Higher layers (network, TCP, MPI, GARA) define their own event enums and
//! drive [`Engine`] with a pop-dispatch loop; this crate knows nothing about
//! networks.

pub mod engine;
pub mod fxhash;
pub mod rng;
pub mod series;
pub mod time;

pub use engine::{CalendarStats, Engine, SchedulerKind};
pub use fxhash::{FxBuildHasher, FxHashMap};
pub use rng::{fnv1a, SimRng};
pub use series::{Recorder, ThroughputMeter, TimeSeries};
pub use time::{SimDelta, SimTime};
