//! A small, fully deterministic PRNG for simulation workloads.
//!
//! We implement xoshiro256** directly rather than pulling in `rand` here so
//! that the core simulation's determinism does not depend on an external
//! crate's version-to-version stream stability. Workload generators in
//! higher crates may still use `rand` seeded from this stream.

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) yields a good stream,
    /// because the state is expanded through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream, e.g. one per traffic source.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Derive an independent child stream named by a label instead of a
    /// bare integer. The label is hashed (FNV-1a) into the stream id, so
    /// call sites read as `rng.fork_labeled("topology")` rather than
    /// `rng.fork(1)` and two dimensions can never collide by both picking
    /// the same small constant.
    ///
    /// Like [`fork`], this consumes one draw from the parent, so the
    /// *sequence* of forks at a call site is part of the deterministic
    /// contract: reordering fork calls reseeds every later child.
    ///
    /// [`fork`]: SimRng::fork
    pub fn fork_labeled(&mut self, label: &str) -> SimRng {
        self.fork(fnv1a(label.as_bytes()))
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Uses Lemire's multiply-shift rejection method.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival processes in traffic generators).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

/// FNV-1a over a byte string; used by [`SimRng::fork_labeled`] and small
/// enough to inline here rather than depend on a hashing crate.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_mean() {
        let mut r = SimRng::new(9);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean_in = 3.5;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.exp(mean_in);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - mean_in).abs() < 0.15, "mean {mean}");
    }

    /// Labeled forks from identical parent state must yield pairwise
    /// distinct streams: hash the first few draws of each child and check
    /// for collisions across a large label population.
    #[test]
    fn labeled_forks_do_not_collide() {
        let labels: Vec<String> = (0..1000).map(|i| format!("stream-{i}")).collect();
        let mut seen = std::collections::HashSet::new();
        for label in &labels {
            // Fresh parent per label: collisions here would mean the label
            // hash (not parent stream position) failed to separate them.
            let mut parent = SimRng::new(0xD15EA5E);
            let mut child = parent.fork_labeled(label);
            let sig = (child.next_u64(), child.next_u64(), child.next_u64());
            assert!(seen.insert(sig), "label {label} collided");
        }
    }

    /// A labeled fork is a real stream split: the child is statistically
    /// well-behaved (uniform mean, balanced bits) and decorrelated from
    /// both the parent continuation and siblings.
    #[test]
    fn labeled_forks_are_statistically_sound() {
        let mut parent = SimRng::new(99);
        let mut child = parent.fork_labeled("traffic");
        let mut sibling = parent.fork_labeled("faults");
        let n = 10_000;
        let mut sum = 0.0;
        let mut bit_counts = [0u32; 64];
        let mut eq_parent = 0;
        let mut eq_sibling = 0;
        for _ in 0..n {
            let v = child.next_u64();
            if v == parent.next_u64() {
                eq_parent += 1;
            }
            if v == sibling.next_u64() {
                eq_sibling += 1;
            }
            for (b, c) in bit_counts.iter_mut().enumerate() {
                *c += ((v >> b) & 1) as u32;
            }
            sum += (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
        assert_eq!(eq_parent, 0, "child stream tracked the parent");
        assert_eq!(eq_sibling, 0, "sibling streams coincided");
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "child mean {mean}");
        for (b, &c) in bit_counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {b} biased: {frac}");
        }
    }

    /// `fork_labeled` is `fork` of the label's FNV-1a hash — pins the
    /// mapping so scenario streams stay stable across refactors.
    #[test]
    fn labeled_fork_matches_explicit_hash() {
        let mut a = SimRng::new(4242);
        let mut b = SimRng::new(4242);
        let mut ca = a.fork_labeled("gara");
        let mut cb = b.fork(fnv1a(b"gara"));
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_parent_continuation() {
        let mut parent = SimRng::new(5);
        let mut child = parent.fork(1);
        let c1: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        // Re-derive with identical parent history.
        let mut parent2 = SimRng::new(5);
        let mut child2 = parent2.fork(1);
        let c2: Vec<u64> = (0..10).map(|_| child2.next_u64()).collect();
        assert_eq!(c1, c2);
    }
}
