//! A fast, deterministic hasher for small fixed-shape keys.
//!
//! Per-packet demultiplexing (TCP/UDP 4-tuples, port maps) sits on the
//! simulator's hottest path; SipHash's DoS resistance buys nothing in a
//! closed deterministic simulation and costs real time per lookup. This is
//! the well-known FxHash multiply-mix (the rustc hasher): one wrapping
//! multiply per word, no per-process random state, so runs are identical
//! across processes and platforms.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: `state = (state rotl 5 ^ word) * SEED` per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a: FxHashMap<(u32, u16, u32, u16), u64> = FxHashMap::default();
        a.insert((1, 2, 3, 4), 42);
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write_u64(0xdead_beef);
        h2.write_u64(0xdead_beef);
        assert_eq!(h1.finish(), h2.finish());
        assert_eq!(a.get(&(1, 2, 3, 4)), Some(&42));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(hash(0), hash(1));
        assert_ne!(hash(1), hash(1 << 32));
    }
}
