//! Simulation time.
//!
//! All simulation time is kept as an integer number of nanoseconds since the
//! start of the run. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and makes runs bit-for-bit reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since t=0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDelta(u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any time reachable in practice.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }
    /// Construct from fractional seconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// Time elapsed since `earlier`; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDelta {
        SimDelta(self.0.saturating_sub(earlier.0))
    }
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDelta {
    pub const ZERO: SimDelta = SimDelta(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDelta(ns)
    }
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDelta(us * 1_000)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDelta(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDelta(s * NANOS_PER_SEC)
    }
    /// Construct from fractional seconds. Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimDelta seconds: {s}");
        SimDelta((s * NANOS_PER_SEC as f64).round() as u64)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// The time it takes to transmit `bytes` at `bits_per_sec`.
    ///
    /// Rounds up to the next nanosecond so that back-to-back transmissions
    /// never exceed the configured rate.
    #[inline]
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> SimDelta {
        assert!(bits_per_sec > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128).div_ceil(bits_per_sec as u128);
        SimDelta(ns as u64)
    }
}

impl Add<SimDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDelta) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDelta> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDelta) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDelta) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDelta;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDelta {
        SimDelta(self.0.saturating_sub(rhs.0))
    }
}
impl Add for SimDelta {
    type Output = SimDelta;
    #[inline]
    fn add(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0 + rhs.0)
    }
}
impl AddAssign for SimDelta {
    #[inline]
    fn add_assign(&mut self, rhs: SimDelta) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDelta {
    type Output = SimDelta;
    #[inline]
    fn sub(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0.saturating_sub(rhs.0))
    }
}
impl SubAssign for SimDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDelta) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}
impl Mul<u64> for SimDelta {
    type Output = SimDelta;
    #[inline]
    fn mul(self, rhs: u64) -> SimDelta {
        SimDelta(self.0 * rhs)
    }
}
impl Div<u64> for SimDelta {
    type Output = SimDelta;
    #[inline]
    fn div(self, rhs: u64) -> SimDelta {
        SimDelta(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDelta::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimTime::from_secs_f64(0.25), SimTime::from_millis(250));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDelta::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t - SimTime::from_secs(1), SimDelta::from_millis(500));
        // saturating subtraction
        assert_eq!(
            SimTime::from_secs(1) - SimDelta::from_secs(5),
            SimTime::ZERO
        );
        assert_eq!(SimTime::ZERO.since(SimTime::from_secs(1)), SimDelta::ZERO);
    }

    #[test]
    fn transmission_time_exact() {
        // 1500 bytes at 12000 bits/s = 1 second.
        assert_eq!(SimDelta::transmission(1500, 12_000), SimDelta::from_secs(1));
        // Rounds up: 1 byte at 1 Gb/s = 8 ns exactly.
        assert_eq!(SimDelta::transmission(1, 1_000_000_000).as_nanos(), 8);
        // 1 byte at 3 Gb/s = 2.67 ns -> 3 ns.
        assert_eq!(SimDelta::transmission(1, 3_000_000_000).as_nanos(), 3);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn transmission_zero_bw_panics() {
        let _ = SimDelta::transmission(1, 0);
    }
}
