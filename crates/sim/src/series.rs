//! Time-series recording for experiment output.
//!
//! Every figure in the paper is either a time trace (bandwidth vs time,
//! sequence number vs time) or a summary over such traces (throughput vs
//! reservation). The [`Recorder`] collects named `(t, value)` series during
//! a run; [`ThroughputMeter`] turns byte-arrival callbacks into a bucketed
//! Kb/s series like the paper's plots.

use crate::time::{SimDelta, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A single named series of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (unweighted). Returns 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Mean of values with `t` in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Render as CSV rows `t,value` (times in seconds).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for &(t, v) in &self.points {
            let _ = writeln!(out, "{:.6},{:.3}", t.as_secs_f64(), v);
        }
        out
    }
}

/// A collection of named time series for one simulation run.
#[derive(Debug, Default)]
pub struct Recorder {
    series: BTreeMap<String, TimeSeries>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, name: &str, t: SimTime, v: f64) {
        self.series.entry_mut(name).push(t, v);
    }

    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// The series with the given name, or an empty one if never recorded.
    pub fn series(&self, name: &str) -> TimeSeries {
        self.series.get(name).cloned().unwrap_or_default()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }
}

trait EntryMut {
    fn entry_mut(&mut self, name: &str) -> &mut TimeSeries;
}
impl EntryMut for BTreeMap<String, TimeSeries> {
    fn entry_mut(&mut self, name: &str) -> &mut TimeSeries {
        if !self.contains_key(name) {
            self.insert(name.to_owned(), TimeSeries::default());
        }
        self.get_mut(name).unwrap()
    }
}

/// Buckets byte arrivals into a bandwidth series, like the paper's
/// "Bandwidth Achieved (Kb/s)" plots.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    bucket: SimDelta,
    bucket_start: SimTime,
    bytes_in_bucket: u64,
    total_bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
    series: Vec<(SimTime, f64)>, // (bucket end, Kb/s over the bucket)
}

impl ThroughputMeter {
    pub fn new(bucket: SimDelta) -> Self {
        assert!(!bucket.is_zero(), "zero bucket width");
        ThroughputMeter {
            bucket,
            bucket_start: SimTime::ZERO,
            bytes_in_bucket: 0,
            total_bytes: 0,
            first: None,
            last: SimTime::ZERO,
            series: Vec::new(),
        }
    }

    /// Record `n` bytes arriving at time `t`. Times must be non-decreasing.
    pub fn on_bytes(&mut self, t: SimTime, n: u64) {
        if self.first.is_none() {
            self.first = Some(t);
            // Align buckets to the first arrival for cleaner leading edges.
            self.bucket_start = t;
        }
        self.flush_to(t);
        self.bytes_in_bucket += n;
        self.total_bytes += n;
        self.last = t;
    }

    fn flush_to(&mut self, t: SimTime) {
        while t >= self.bucket_start + self.bucket {
            let end = self.bucket_start + self.bucket;
            let kbps = (self.bytes_in_bucket as f64 * 8.0 / 1_000.0) / self.bucket.as_secs_f64();
            self.series.push((end, kbps));
            self.bytes_in_bucket = 0;
            self.bucket_start = end;
        }
    }

    /// Close out any partial bucket and return the `(t, Kb/s)` series.
    pub fn finish(mut self, end: SimTime) -> TimeSeries {
        self.flush_to(end);
        let mut ts = TimeSeries::default();
        for (t, v) in self.series {
            ts.push(t, v);
        }
        ts
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average goodput in Kb/s between the first and `end`.
    pub fn average_kbps(&self, end: SimTime) -> f64 {
        let Some(first) = self.first else { return 0.0 };
        let dur = end.since(first).as_secs_f64();
        if dur <= 0.0 {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / 1_000.0 / dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_named_series() {
        let mut r = Recorder::new();
        r.add("bw", SimTime::from_secs(1), 10.0);
        r.add("bw", SimTime::from_secs(2), 20.0);
        r.add("other", SimTime::from_secs(1), 1.0);
        assert_eq!(r.get("bw").unwrap().len(), 2);
        assert_eq!(r.series("bw").mean(), 15.0);
        assert!(r.get("missing").is_none());
        assert_eq!(r.series("missing").len(), 0);
    }

    #[test]
    fn mean_in_window() {
        let mut ts = TimeSeries::default();
        for s in 0..10 {
            ts.push(SimTime::from_secs(s), s as f64);
        }
        assert_eq!(
            ts.mean_in(SimTime::from_secs(2), SimTime::from_secs(5)),
            3.0
        );
        assert_eq!(
            ts.mean_in(SimTime::from_secs(50), SimTime::from_secs(60)),
            0.0
        );
    }

    #[test]
    fn throughput_meter_buckets_exactly() {
        let mut m = ThroughputMeter::new(SimDelta::from_secs(1));
        // 1250 bytes = 10 Kb in each of two buckets.
        m.on_bytes(SimTime::from_millis(100), 1250);
        m.on_bytes(SimTime::from_millis(1200), 1250);
        let ts = m.finish(SimTime::from_millis(2200));
        assert_eq!(ts.len(), 2);
        assert!((ts.points()[0].1 - 10.0).abs() < 1e-9);
        assert!((ts.points()[1].1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_meter_average() {
        let mut m = ThroughputMeter::new(SimDelta::from_millis(100));
        m.on_bytes(SimTime::from_secs(0), 12_500); // 100 Kb
        assert_eq!(m.total_bytes(), 12_500);
        let avg = m.average_kbps(SimTime::from_secs(10));
        assert!((avg - 10.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn empty_bucket_gaps_emit_zero_buckets() {
        let mut m = ThroughputMeter::new(SimDelta::from_secs(1));
        m.on_bytes(SimTime::from_secs(0), 125);
        m.on_bytes(SimTime::from_secs(5), 125);
        let ts = m.finish(SimTime::from_secs(6));
        // Buckets at 1..=6 seconds; middle ones are zero.
        assert_eq!(ts.len(), 6);
        assert!(ts.points()[2].1 == 0.0 && ts.points()[3].1 == 0.0);
    }
}
