//! The discrete-event engine: a time-ordered event queue.
//!
//! The engine is deliberately minimal and generic over the event type `E`;
//! the world model (nodes, links, stacks) lives in higher crates and drives
//! the engine with a pop-dispatch loop. Ties in time are broken by insertion
//! order (a monotonic sequence number), which makes runs deterministic.
//!
//! Cancellation is not supported directly; users attach generation counters
//! to their events and ignore stale ones on delivery (lazy cancellation).
//! This is both simpler and faster than tombstoning heap entries.

use crate::time::{SimDelta, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            processed: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `ev` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: the simulation never travels backwards.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Schedule `ev` after delay `d` from the current time.
    #[inline]
    pub fn schedule_in(&mut self, d: SimDelta, ev: E) {
        self.schedule(self.now + d, ev);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.processed += 1;
        Some((e.at, e.ev))
    }

    /// Pop the next event only if it is due at or before `limit`.
    ///
    /// If the next event is later than `limit`, the clock advances to `limit`
    /// and `None` is returned (so that `now()` reflects the horizon reached).
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= limit => self.pop(),
            _ => {
                if self.now < limit {
                    self.now = limit;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_secs(3), 3);
        e.schedule(SimTime::from_secs(1), 1);
        e.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e: Engine<u32> = Engine::new();
        let t = SimTime::from_millis(5);
        for v in 0..10 {
            e.schedule(t, v);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_limit_and_advances_clock() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_secs(10), 10);
        assert_eq!(e.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pop_until(SimTime::from_secs(10)), Some((SimTime::from_secs(10), 10)));
    }

    #[test]
    fn pop_until_on_empty_advances_to_limit() {
        let mut e: Engine<u32> = Engine::new();
        assert_eq!(e.pop_until(SimTime::from_secs(7)), None);
        assert_eq!(e.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_secs(2), 1);
        e.pop();
        e.schedule(SimTime::from_secs(1), 2);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_secs(1), 1);
        e.pop();
        e.schedule_in(SimDelta::from_secs(1), 2);
        assert_eq!(e.pop().unwrap().0, SimTime::from_secs(2));
    }
}
