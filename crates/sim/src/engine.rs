//! The discrete-event engine: a time-ordered event queue.
//!
//! The engine is deliberately minimal and generic over the event type `E`;
//! the world model (nodes, links, stacks) lives in higher crates and drives
//! the engine with a pop-dispatch loop. Ties in time are broken by insertion
//! order (a monotonic sequence number), which makes runs deterministic.
//!
//! Two interchangeable scheduler backends implement the same contract
//! (earliest `(time, seq)` pops first):
//!
//! - [`SchedulerKind::Heap`]: a `BinaryHeap` — the O(log n) reference
//!   implementation the property tests compare against.
//! - [`SchedulerKind::Calendar`] (the default): a calendar queue in the
//!   style of Brown (CACM 1988) — a power-of-two ring of time buckets with
//!   amortized O(1) enqueue/dequeue, the structure ns-2 adopted for exactly
//!   this packet-event workload. Bucket width and count adapt to the
//!   observed event density.
//!
//! Cancellation is not supported directly; users attach generation counters
//! to their events and ignore stale ones on delivery (lazy cancellation).
//! This is both simpler and faster than tombstoning entries.

use crate::time::{SimDelta, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which event-queue backend an [`Engine`] uses.
///
/// Both backends are observably identical (same pop order, same clock
/// behavior); `Calendar` is the default because it is measurably faster on
/// packet workloads (see `BENCH_engine.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Binary-heap reference scheduler.
    Heap,
    /// Bucketed calendar queue (timing wheel with adaptive width).
    #[default]
    Calendar,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Cached location of the minimum pending entry in a [`CalendarQueue`],
/// kept eagerly up to date so `peek_time` is O(1) and non-mutating.
#[derive(Debug, Clone, Copy)]
struct Head {
    at: SimTime,
    seq: u64,
    bucket: usize,
}

/// Calendar queue: a ring of `nbuckets` (power of two) buckets, each
/// covering a `2^wlog`-nanosecond window of the time axis; an event at `t`
/// lives in bucket `(t >> wlog) & (nbuckets - 1)`. Entries within a bucket
/// are kept sorted ascending by `(at, seq)`, so the bucket front is the
/// bucket minimum, and — because equal timestamps always map to the same
/// bucket — FIFO tie order is preserved structurally.
///
/// A two-tier variant (far-future events parked in an overflow heap) was
/// prototyped and benchmarked during development; it lost to this simple
/// single-tier design on every workload in `bench_engine` — the migration
/// double-handling and geometry feedback loops cost more than the sparse
/// mid-bucket inserts they avoided — so the simple design stays.
struct CalendarQueue<E> {
    buckets: Vec<VecDeque<Entry<E>>>,
    /// log2 of the bucket width in nanoseconds.
    wlog: u32,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: u64,
    len: usize,
    head: Option<Head>,
    /// Timestamp of the last dequeued entry (ns), for gap statistics.
    last_pop_ns: u64,
    /// Exponential moving average of inter-pop gaps (ns); sizes bucket width.
    avg_gap_ns: u64,
    /// Dequeues since the last rebuild that fell through the one-year scan
    /// to a full direct search — a signal the bucket width is mismatched.
    fallback_scans: u32,
    stats: CalendarStats,
}

/// Lifetime operation counters for a `CalendarQueue`, for benchmark
/// diagnostics (see `bench_engine`); not part of the public API.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalendarStats {
    /// Full re-bucketing passes.
    pub rebuilds: u64,
    /// Pops that fell through the one-year scan to a direct search.
    pub fallbacks: u64,
    /// Total bucket windows examined across all pop scans.
    pub scan_steps: u64,
    /// Pushes that could not append and had to binary-search the bucket.
    pub slow_pushes: u64,
}

const MIN_BUCKETS: usize = 32;
const MAX_BUCKETS: usize = 1 << 20;
/// Initial bucket width: 2^10 ns ≈ 1 µs, a typical packet-event gap.
const INIT_WLOG: u32 = 10;
const MAX_WLOG: u32 = 44; // ~4.8 hours per bucket; beyond this, width stops helping.

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            wlog: INIT_WLOG,
            mask: (MIN_BUCKETS - 1) as u64,
            len: 0,
            head: None,
            last_pop_ns: 0,
            avg_gap_ns: 1 << INIT_WLOG,
            fallback_scans: 0,
            stats: CalendarStats::default(),
        }
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_nanos() >> self.wlog) & self.mask) as usize
    }

    fn push(&mut self, e: Entry<E>) {
        let idx = self.bucket_of(e.at);
        if self.head.is_none_or(|h| (e.at, e.seq) < (h.at, h.seq)) {
            self.head = Some(Head {
                at: e.at,
                seq: e.seq,
                bucket: idx,
            });
        }
        let b = &mut self.buckets[idx];
        // Fast path: appending in sorted position (monotone seq means equal
        // timestamps always append, preserving FIFO ties).
        if b.back()
            .is_none_or(|last| (last.at, last.seq) < (e.at, e.seq))
        {
            b.push_back(e);
        } else {
            self.stats.slow_pushes += 1;
            let pos = b.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
            b.insert(pos, e);
        }
        self.len += 1;
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let h = self.head?;
        let e = self.buckets[h.bucket]
            .pop_front()
            .expect("head points at empty bucket");
        debug_assert!(e.at == h.at && e.seq == h.seq);
        self.len -= 1;
        let at_ns = e.at.as_nanos();
        let gap = at_ns.saturating_sub(self.last_pop_ns);
        self.last_pop_ns = at_ns;
        self.avg_gap_ns =
            (((self.avg_gap_ns as u128) * 7 + gap as u128) / 8).min(u64::MAX as u128) as u64;
        self.head = self.find_next(e.at);
        let nb = self.buckets.len();
        if (self.len < nb / 8 && nb > MIN_BUCKETS) || self.fallback_scans >= 64 {
            self.rebuild();
        }
        Some(e)
    }

    /// Locate the minimum remaining entry, starting the scan at the bucket
    /// window containing `from` (the timestamp just dequeued; all remaining
    /// entries are ≥ `from`). Scans at most one full ring revolution of
    /// windows in increasing time order, then falls back to a direct
    /// min-of-fronts search for far-future events.
    fn find_next(&mut self, from: SimTime) -> Option<Head> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len() as u64;
        let virt = from.as_nanos() >> self.wlog;
        for k in 0..nb {
            // Windows are scanned in increasing time order, so the first
            // bucket front that falls inside its window is the global min.
            self.stats.scan_steps += 1;
            let Some(v) = virt.checked_add(k) else { break };
            let i = (v & self.mask) as usize;
            let top: u128 = ((v as u128) + 1) << self.wlog;
            if let Some(f) = self.buckets[i].front() {
                if (f.at.as_nanos() as u128) < top {
                    return Some(Head {
                        at: f.at,
                        seq: f.seq,
                        bucket: i,
                    });
                }
            }
        }
        // Nothing within one ring revolution: direct search. Frequent hits
        // here mean the bucket width is too small for the event spacing;
        // rebuild (triggered by the caller) will widen it.
        self.fallback_scans += 1;
        self.stats.fallbacks += 1;
        let mut best: Option<Head> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(f) = b.front() {
                if best.is_none_or(|h| (f.at, f.seq) < (h.at, h.seq)) {
                    best = Some(Head {
                        at: f.at,
                        seq: f.seq,
                        bucket: i,
                    });
                }
            }
        }
        best
    }

    /// Re-bucket every entry with a bucket count proportional to occupancy
    /// and a width tracking the observed inter-pop gap.
    fn rebuild(&mut self) {
        self.fallback_scans = 0;
        self.stats.rebuilds += 1;
        let nbuckets = self
            .len
            .max(MIN_BUCKETS)
            .next_power_of_two()
            .min(MAX_BUCKETS);
        // Aim for roughly one average gap per bucket, so consecutive pops
        // land in nearby buckets and the year scan stays short.
        let gap = self.avg_gap_ns.max(1);
        let wlog = (63 - gap.leading_zeros()).min(MAX_WLOG);
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.extend(b.drain(..));
        }
        self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        self.mask = (nbuckets - 1) as u64;
        self.wlog = wlog;
        self.head = None;
        let len = entries.len();
        for e in entries {
            let idx = self.bucket_of(e.at);
            if self.head.is_none_or(|h| (e.at, e.seq) < (h.at, h.seq)) {
                self.head = Some(Head {
                    at: e.at,
                    seq: e.seq,
                    bucket: idx,
                });
            }
            let b = &mut self.buckets[idx];
            if b.back()
                .is_none_or(|last| (last.at, last.seq) < (e.at, e.seq))
            {
                b.push_back(e);
            } else {
                let pos = b.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
                b.insert(pos, e);
            }
        }
        self.len = len;
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(CalendarQueue<E>),
}

/// A deterministic discrete-event queue.
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    backend: Backend<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// An engine with the default scheduler backend.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// An engine with an explicitly chosen scheduler backend.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let backend = match kind {
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => Backend::Calendar(CalendarQueue::new()),
        };
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            backend,
            processed: 0,
        }
    }

    /// Calendar-backend operation counters (`None` on the heap backend).
    /// Benchmark/diagnostic use only.
    #[doc(hidden)]
    pub fn calendar_stats(&self) -> Option<CalendarStats> {
        match &self.backend {
            Backend::Heap(_) => None,
            Backend::Calendar(c) => Some(c.stats),
        }
    }

    /// Which scheduler backend this engine was built with.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `ev` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: the simulation never travels backwards.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, ev };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Calendar(c) => c.push(entry),
        }
    }

    /// Schedule `ev` after delay `d` from the current time.
    #[inline]
    pub fn schedule_in(&mut self, d: SimDelta, ev: E) {
        self.schedule(self.now + d, ev);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| e.at),
            Backend::Calendar(c) => c.head.map(|h| h.at),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = match &mut self.backend {
            Backend::Heap(h) => h.pop()?,
            Backend::Calendar(c) => c.pop()?,
        };
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.processed += 1;
        Some((e.at, e.ev))
    }

    /// Pop the next event only if it is due at or before `limit`.
    ///
    /// If the next event is later than `limit`, the clock advances to `limit`
    /// and `None` is returned (so that `now()` reflects the horizon reached).
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= limit => self.pop(),
            _ => {
                if self.now < limit {
                    self.now = limit;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Engine<u32>; 2] {
        [
            Engine::with_scheduler(SchedulerKind::Heap),
            Engine::with_scheduler(SchedulerKind::Calendar),
        ]
    }

    #[test]
    fn default_backend_is_calendar() {
        let e: Engine<u32> = Engine::new();
        assert_eq!(e.scheduler_kind(), SchedulerKind::Calendar);
    }

    #[test]
    fn pops_in_time_order() {
        for mut e in both() {
            e.schedule(SimTime::from_secs(3), 3);
            e.schedule(SimTime::from_secs(1), 1);
            e.schedule(SimTime::from_secs(2), 2);
            let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
            assert_eq!(order, vec![1, 2, 3]);
            assert_eq!(e.now(), SimTime::from_secs(3));
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut e in both() {
            let t = SimTime::from_millis(5);
            for v in 0..10 {
                e.schedule(t, v);
            }
            let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pop_until_respects_limit_and_advances_clock() {
        for mut e in both() {
            e.schedule(SimTime::from_secs(10), 10);
            assert_eq!(e.pop_until(SimTime::from_secs(5)), None);
            assert_eq!(e.now(), SimTime::from_secs(5));
            assert_eq!(
                e.pop_until(SimTime::from_secs(10)),
                Some((SimTime::from_secs(10), 10))
            );
        }
    }

    #[test]
    fn pop_until_on_empty_advances_to_limit() {
        for mut e in both() {
            assert_eq!(e.pop_until(SimTime::from_secs(7)), None);
            assert_eq!(e.now(), SimTime::from_secs(7));
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(SimTime::from_secs(2), 1);
        e.pop();
        e.schedule(SimTime::from_secs(1), 2);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        for mut e in both() {
            e.schedule(SimTime::from_secs(1), 1);
            e.pop();
            e.schedule_in(SimDelta::from_secs(1), 2);
            assert_eq!(e.pop().unwrap().0, SimTime::from_secs(2));
        }
    }

    #[test]
    fn calendar_handles_far_future_and_resize() {
        let mut e: Engine<u64> = Engine::with_scheduler(SchedulerKind::Calendar);
        // Dense near-term burst (forces growth), one far-future timer
        // (forces the direct-search fallback), and interleaved pops.
        for i in 0..10_000u64 {
            e.schedule(SimTime::from_nanos(i * 3), i);
        }
        e.schedule(SimTime::from_secs(3_600), u64::MAX);
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((t, v)) = e.pop() {
            assert!(t >= last.0);
            last = (t, v);
            n += 1;
        }
        assert_eq!(n, 10_001);
        assert_eq!(last, (SimTime::from_secs(3_600), u64::MAX));
    }

    #[test]
    fn calendar_handles_max_timestamp() {
        let mut e: Engine<u32> = Engine::with_scheduler(SchedulerKind::Calendar);
        e.schedule(SimTime::MAX, 1);
        e.schedule(SimTime::ZERO, 0);
        assert_eq!(e.pop(), Some((SimTime::ZERO, 0)));
        assert_eq!(e.pop(), Some((SimTime::MAX, 1)));
        assert_eq!(e.pop(), None);
    }
}
