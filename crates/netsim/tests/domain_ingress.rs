//! Inter-domain EF aggregate policing (paper §5.1): the ingress router of
//! a downstream domain polices the whole premium class with one token
//! bucket, protecting itself from an upstream domain that marks too much.

use mpichgq_dsrt::ProcId;
use mpichgq_netsim::{
    Dscp, FlowSpec, Framing, LinkCfg, Net, NetHandler, NodeId, Packet, PolicingAction, Proto,
    QueueCfg, TokenBucket, TopoBuilder, L4,
};
use mpichgq_sim::{SimDelta, SimTime};

struct Count {
    ef: u64,
    be: u64,
}
impl NetHandler for Count {
    fn deliver(&mut self, _n: &mut Net, _h: NodeId, pkt: Packet) {
        match pkt.dscp {
            Dscp::Ef => self.ef += 1,
            Dscp::Af(_) | Dscp::BestEffort => self.be += 1,
        }
    }
    fn host_timer(&mut self, _n: &mut Net, _h: NodeId, _t: u64) {}
    fn cpu_done(&mut self, _n: &mut Net, _h: NodeId, _p: ProcId) {}
    fn control(&mut self, _n: &mut Net, _t: u64) {}
}

fn udp(src: NodeId, dst: NodeId, dport: u16) -> Packet {
    Packet {
        src,
        dst,
        src_port: 1,
        dst_port: dport,
        dscp: Dscp::BestEffort,
        l4: L4::Udp,
        payload_len: 972, // 1000-byte datagrams
        id: 0,
        born: SimTime::ZERO,
    }
}

#[test]
fn domain_ingress_polices_the_premium_aggregate() {
    // Two domains: (h1,h2 -> rA) | domain boundary | (rB -> sink host).
    let mut b = TopoBuilder::new(21);
    let h1 = b.host("src-1");
    let h2 = b.host("src-2");
    let ra = b.router("domain-a-edge");
    let rb = b.router("domain-b-ingress");
    let dst = b.host("sink");
    let l = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_millis(1),
        framing: Framing::None,
    };
    b.link(h1, ra, l, QueueCfg::priority_default());
    b.link(h2, ra, l, QueueCfg::priority_default());
    let (ab, _ba) = b.link(ra, rb, l, QueueCfg::priority_default());
    b.link(rb, dst, l, QueueCfg::priority_default());
    let mut net = b.build();

    // Domain A marks both flows EF with generous per-flow policers
    // (an over-admitting upstream domain).
    for h in [h1, h2] {
        net.node_mut(ra).classifier.install(
            FlowSpec::host_pair(h, dst, Proto::Udp),
            Dscp::Ef,
            Some(TokenBucket::new(50_000_000, 1_000_000)),
            PolicingAction::Drop,
        );
    }
    // Domain B's ingress polices the EF *aggregate* to 10 packets' worth.
    net.set_edge_ingress(ab, true);
    net.node_mut(rb).classifier.install(
        FlowSpec::ef_aggregate(),
        Dscp::Ef,
        Some(TokenBucket::new(8_000, 10_000)),
        PolicingAction::Drop,
    );

    // Each source sends 10 packets back to back.
    for i in 0..10 {
        net.send_ip(udp(h1, dst, 5));
        let _ = i;
        net.send_ip(udp(h2, dst, 5));
    }
    let mut h = Count { ef: 0, be: 0 };
    net.run_to_quiescence(&mut h);
    // 20 offered, aggregate bucket admits 10 (1000 bytes each).
    assert_eq!(h.ef, 10, "aggregate policer must bound the EF class");
    assert_eq!(net.drops.policed, 10);
}

#[test]
fn demoting_domain_ingress_keeps_excess_as_best_effort() {
    let mut b = TopoBuilder::new(22);
    let h1 = b.host("src");
    let ra = b.router("a");
    let rb = b.router("b");
    let dst = b.host("sink");
    let l = LinkCfg {
        bandwidth_bps: 100_000_000,
        delay: SimDelta::from_millis(1),
        framing: Framing::None,
    };
    b.link(h1, ra, l, QueueCfg::priority_default());
    let (ab, _) = b.link(ra, rb, l, QueueCfg::priority_default());
    b.link(rb, dst, l, QueueCfg::priority_default());
    let mut net = b.build();
    net.node_mut(ra).classifier.install(
        FlowSpec::host_pair(h1, dst, Proto::Udp),
        Dscp::Ef,
        None,
        PolicingAction::Drop,
    );
    net.set_edge_ingress(ab, true);
    net.node_mut(rb).classifier.install(
        FlowSpec::ef_aggregate(),
        Dscp::Ef,
        Some(TokenBucket::new(8_000, 5_000)),
        PolicingAction::Demote,
    );
    for _ in 0..10 {
        net.send_ip(udp(h1, dst, 5));
    }
    let mut h = Count { ef: 0, be: 0 };
    net.run_to_quiescence(&mut h);
    assert_eq!(h.ef, 5);
    assert_eq!(h.be, 5, "excess premium demoted, not dropped");
    assert_eq!(net.drops.policed, 0);
}
