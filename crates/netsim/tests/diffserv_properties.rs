//! Property tests of the DiffServ mechanisms: token-bucket conformance,
//! shaper conservation and ordering, framing monotonicity, and end-to-end
//! priority isolation on a live network.

use mpichgq_netsim::{
    topology::Dumbbell, Dscp, FlowSpec, Framing, NetHandler, NodeId, Packet, PolicingAction, Proto,
    TokenBucket, L4,
};
use mpichgq_sim::{SimDelta, SimTime};
use proptest::prelude::*;

fn udp(src: NodeId, dst: NodeId, payload: u32, dscp: Dscp) -> Packet {
    Packet {
        src,
        dst,
        src_port: 1,
        dst_port: 2,
        dscp,
        l4: L4::Udp,
        payload_len: payload,
        id: 0,
        born: SimTime::ZERO,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Conformant bytes over any interval never exceed depth + rate × T,
    /// for arbitrary offered patterns.
    #[test]
    fn token_bucket_long_run_conformance(
        rate_kbps in 50u64..5_000,
        depth in 500u64..50_000,
        offers in proptest::collection::vec((0u64..2_000, 40u32..1_500), 10..200),
    ) {
        let mut tb = TokenBucket::new(rate_kbps * 1000, depth);
        let mut now = SimTime::ZERO;
        let mut conformant: u64 = 0;
        for (gap_us, size) in offers {
            now += SimDelta::from_micros(gap_us);
            if tb.try_consume(now, size) {
                conformant += size as u64;
            }
        }
        let bound = depth as f64 + rate_kbps as f64 * 1000.0 / 8.0 * now.as_secs_f64() + 1.0;
        prop_assert!((conformant as f64) <= bound,
            "{conformant} conformant bytes exceed bound {bound}");
    }

    /// Framing never shrinks a packet, and is monotone in payload size.
    #[test]
    fn framing_monotone_and_inflating(len_a in 1u32..65_000, len_b in 1u32..65_000) {
        for f in [Framing::None, Framing::Ethernet, Framing::AtmAal5] {
            prop_assert!(f.wire_bytes(len_a) >= len_a);
            let (lo, hi) = if len_a <= len_b { (len_a, len_b) } else { (len_b, len_a) };
            prop_assert!(f.wire_bytes(lo) <= f.wire_bytes(hi),
                "{f:?} not monotone at {lo}/{hi}");
        }
    }

    /// A shaped flow is delayed, never dropped or reordered: every packet
    /// offered to a host shaper arrives at the destination exactly once
    /// and in order.
    #[test]
    fn shaper_conserves_and_orders(
        count in 1usize..40,
        payload in 100u32..1_400,
        rate_kbps in 100u64..2_000,
        depth in 500u64..5_000,
    ) {
        let d = Dumbbell::build(10_000_000, SimDelta::from_millis(1), 5);
        let (src, dst) = (d.src, d.dst);
        let mut net = d.net;
        net.install_shaper(
            src,
            FlowSpec::host_pair(src, dst, Proto::Udp),
            TokenBucket::new(rate_kbps * 1000, depth.max(payload as u64 + 28)),
        );
        struct Collect {
            got: Vec<u64>,
        }
        impl NetHandler for Collect {
            fn deliver(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, pkt: Packet) {
                self.got.push(pkt.id);
            }
            fn host_timer(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, _t: u64) {}
            fn cpu_done(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, _p: mpichgq_dsrt::ProcId) {}
            fn control(&mut self, _n: &mut mpichgq_netsim::Net, _t: u64) {}
        }
        let mut h = Collect { got: Vec::new() };
        for _ in 0..count {
            net.send_ip(udp(src, dst, payload, Dscp::BestEffort));
        }
        net.run_to_quiescence(&mut h);
        prop_assert_eq!(h.got.len(), count, "shaper lost packets");
        let mut sorted = h.got.clone();
        sorted.sort();
        prop_assert_eq!(&h.got, &sorted, "shaper reordered packets");
    }

    /// EF traffic marked at the edge is never dropped by queues as long as
    /// its policed rate fits the link, regardless of best-effort flood
    /// size.
    #[test]
    fn ef_isolated_from_best_effort_flood(
        flood_pkts in 10usize..300,
        ef_pkts in 1usize..30,
    ) {
        let d = Dumbbell::build(5_000_000, SimDelta::from_millis(1), 9);
        let (src, dst, r1) = (d.src, d.dst, d.r1);
        let mut net = d.net;
        // Mark (without policing) UDP to port 9: EF.
        net.node_mut(r1).classifier.install(
            FlowSpec {
                src: Some(src),
                dst: Some(dst),
                proto: Some(Proto::Udp),
                src_port: None,
                dst_port: Some(9),
                dscp: None,
            },
            Dscp::Ef,
            None,
            PolicingAction::Drop,
        );
        struct Count {
            ef: usize,
        }
        impl NetHandler for Count {
            fn deliver(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, pkt: Packet) {
                if pkt.dst_port == 9 {
                    self.ef += 1;
                }
            }
            fn host_timer(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, _t: u64) {}
            fn cpu_done(&mut self, _n: &mut mpichgq_netsim::Net, _h: NodeId, _p: mpichgq_dsrt::ProcId) {}
            fn control(&mut self, _n: &mut mpichgq_netsim::Net, _t: u64) {}
        }
        let mut h = Count { ef: 0 };
        // Interleave the flood and the EF packets.
        for i in 0..flood_pkts.max(ef_pkts) {
            if i < flood_pkts {
                let mut p = udp(src, dst, 1_400, Dscp::BestEffort);
                p.dst_port = 7;
                net.send_ip(p);
            }
            if i < ef_pkts {
                let mut p = udp(src, dst, 200, Dscp::BestEffort);
                p.dst_port = 9;
                net.send_ip(p);
            }
        }
        net.run_to_quiescence(&mut h);
        prop_assert_eq!(h.ef, ef_pkts, "EF packets lost to a best-effort flood");
    }
}
