//! Token buckets: the paper's central policing and shaping mechanism.
//!
//! "Policing is often implemented through a token bucket mechanism. The size
//! of the token bucket controls how quickly an application can send data:
//! tokens are gradually added to the token bucket and packets are only sent
//! if there are tokens in the bucket." (§2)
//!
//! MPICH-GQ's DS module sizes the bucket as `depth = bandwidth × delay`
//! bytes, in practice `bandwidth/40` ("normal") or `bandwidth/4` ("large",
//! §5.4); [`depth_for`] implements these rules.

use mpichgq_sim::SimTime;

/// A token bucket with lazy refill (no timer events needed).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: f64,
    depth_bytes: f64,
    tokens: f64,
    last: SimTime,
}

/// Bucket-depth sizing rules from §4.3 and §5.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthRule {
    /// `depth = bandwidth × delay` with depth in bytes, bandwidth in bits/s
    /// and delay in seconds — the paper's formula as stated in §4.3. (Note
    /// the paper's own worked example, "a two millisecond delay would
    /// suggest bandwidth/62", implies an extra ×8 safety margin over this
    /// formula; operationally they use the still-larger `bandwidth/40`.)
    BandwidthDelay { delay_ns: u64 },
    /// `depth = bandwidth / 40` bytes — the "normal" operational choice.
    Normal,
    /// `depth = bandwidth / 4` bytes — the "large" bucket of Table 1.
    Large,
    /// An explicit depth in bytes.
    Bytes(u64),
}

/// Compute a bucket depth in bytes for a reservation of `rate_bps`.
pub fn depth_for(rule: DepthRule, rate_bps: u64) -> u64 {
    match rule {
        DepthRule::BandwidthDelay { delay_ns } => {
            ((rate_bps as u128 * delay_ns as u128) / 1_000_000_000) as u64
        }
        DepthRule::Normal => rate_bps / 40,
        DepthRule::Large => rate_bps / 4,
        DepthRule::Bytes(b) => b,
    }
    .max(1)
}

impl TokenBucket {
    /// Create a bucket that is initially full.
    pub fn new(rate_bps: u64, depth_bytes: u64) -> Self {
        assert!(rate_bps > 0, "token bucket with zero rate");
        assert!(depth_bytes > 0, "token bucket with zero depth");
        TokenBucket {
            rate_bps: rate_bps as f64,
            depth_bytes: depth_bytes as f64,
            tokens: depth_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    pub fn rate_bps(&self) -> u64 {
        self.rate_bps as u64
    }

    pub fn depth_bytes(&self) -> u64 {
        self.depth_bytes as u64
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        if dt > 0.0 && self.rate_bps > 0.0 {
            self.tokens = (self.tokens + dt * self.rate_bps / 8.0).min(self.depth_bytes);
        }
    }

    /// Current token count in bytes (after refilling to `now`).
    #[inline]
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// What [`TokenBucket::available`] would return at `now`, without
    /// committing the refill. The timeline sampler uses this: a lazy
    /// refill in two float steps is not bit-identical to one step, so a
    /// mid-run mutating read would perturb later conformance decisions —
    /// a read-only projection cannot.
    #[inline]
    pub fn peek_available(&self, now: SimTime) -> f64 {
        let dt = now.since(self.last).as_secs_f64();
        if dt > 0.0 && self.rate_bps > 0.0 {
            (self.tokens + dt * self.rate_bps / 8.0).min(self.depth_bytes)
        } else {
            self.tokens
        }
    }

    /// Try to consume `bytes` tokens; returns whether the packet conforms.
    /// Non-conforming packets leave the bucket untouched (RFC 2697-style
    /// strict policing: no partial consumption).
    #[inline]
    pub fn try_consume(&mut self, now: SimTime, bytes: u32) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// The earliest time at which `bytes` tokens will be available (used by
    /// the end-system shaper to *delay* rather than drop). A frozen
    /// (zero-rate) bucket that cannot cover `bytes` reports
    /// [`SimTime::MAX`]: the deficit never clears.
    #[inline]
    pub fn time_until_conformant(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.refill(now);
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            return now;
        }
        if self.rate_bps <= 0.0 {
            return SimTime::MAX;
        }
        let secs = deficit * 8.0 / self.rate_bps;
        now + mpichgq_sim::SimDelta::from_nanos((secs * 1e9).ceil() as u64)
    }

    /// Reconfigure rate/depth in place (reservation modification); keeps the
    /// current fill level clamped to the new depth.
    ///
    /// Unlike [`TokenBucket::new`], `rate_bps = 0` is legal here: it
    /// *freezes* the bucket, admitting only whatever tokens remain — the
    /// state a policer enters when its backing reservation is revoked but
    /// the rule has not yet been torn down.
    pub fn reconfigure(&mut self, now: SimTime, rate_bps: u64, depth_bytes: u64) {
        self.refill(now);
        self.rate_bps = rate_bps as f64;
        self.depth_bytes = depth_bytes as f64;
        self.tokens = self.tokens.min(self.depth_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpichgq_sim::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_full_and_polices_burst() {
        // 8 Kb/s = 1000 bytes/s; depth 500 bytes.
        let mut tb = TokenBucket::new(8_000, 500);
        assert!(tb.try_consume(t(0), 500));
        assert!(!tb.try_consume(t(0), 1));
        // After 100 ms, 100 bytes of tokens.
        assert!(tb.try_consume(t(100), 100));
        assert!(!tb.try_consume(t(100), 1));
    }

    #[test]
    fn refill_caps_at_depth() {
        let mut tb = TokenBucket::new(8_000, 500);
        assert!(tb.try_consume(t(0), 500));
        // 10 seconds would refill 10_000 bytes; capped at 500.
        assert!((tb.available(t(10_000)) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn nonconforming_packet_consumes_nothing() {
        let mut tb = TokenBucket::new(8_000, 500);
        assert!(tb.try_consume(t(0), 400));
        assert!(!tb.try_consume(t(0), 200)); // only 100 left
        assert!(tb.try_consume(t(0), 100)); // still there
    }

    #[test]
    fn long_run_rate_is_bounded() {
        // Property: over a long window, conformant bytes <= depth + rate*T.
        let mut tb = TokenBucket::new(80_000, 1_000); // 10 KB/s
        let mut sent = 0u64;
        for step in 0..10_000u64 {
            let now = SimTime::from_micros(step * 100); // 1 second total
            if tb.try_consume(now, 120) {
                sent += 120;
            }
        }
        let bound = 1_000 + 10_000; // depth + 1s at 10 KB/s
        assert!(sent <= bound, "sent {sent} > bound {bound}");
        // And it should achieve close to the full rate.
        assert!(sent >= 10_000, "sent {sent} too low");
    }

    #[test]
    fn time_until_conformant_is_exact() {
        let mut tb = TokenBucket::new(8_000, 500); // 1000 B/s
        assert!(tb.try_consume(t(0), 500));
        let when = tb.time_until_conformant(t(0), 250);
        assert_eq!(when, t(250));
        assert!(tb.try_consume(when, 250));
        assert!(!tb.try_consume(when, 1));
    }

    #[test]
    fn depth_rules_match_paper() {
        // depth = bandwidth * delay: 40 Mb/s * 2 ms = 80_000 (= bw/500).
        let d = depth_for(
            DepthRule::BandwidthDelay {
                delay_ns: 2_000_000,
            },
            40_000_000,
        );
        assert_eq!(d, 80_000);
        assert_eq!(depth_for(DepthRule::Normal, 40_000_000), 1_000_000);
        assert_eq!(depth_for(DepthRule::Large, 40_000_000), 10_000_000);
        assert_eq!(depth_for(DepthRule::Bytes(123), 1), 123);
        // Depth never collapses to zero.
        assert_eq!(depth_for(DepthRule::Normal, 10), 1);
    }

    #[test]
    fn reconfigure_clamps_tokens() {
        let mut tb = TokenBucket::new(8_000, 1_000);
        tb.reconfigure(t(0), 16_000, 200);
        assert!(tb.available(t(0)) <= 200.0);
        assert_eq!(tb.rate_bps(), 16_000);
    }

    // -----------------------------------------------------------------
    // Edge cases the fault-injection layer stresses.
    // -----------------------------------------------------------------

    #[test]
    fn zero_rate_bucket_freezes_after_revocation() {
        // Revocation reconfigures the policer to rate 0: residual tokens
        // may still be spent, but nothing ever refills.
        let mut tb = TokenBucket::new(8_000, 500);
        assert!(tb.try_consume(t(0), 200));
        tb.reconfigure(t(100), 0, 500);
        let residual = tb.available(t(100));
        assert!(tb.try_consume(t(100), residual as u32));
        // Hours later, still empty.
        assert!((tb.available(t(10_000_000))).abs() < 1e-6);
        assert!(!tb.try_consume(t(10_000_000), 1));
        assert_eq!(tb.rate_bps(), 0);
    }

    #[test]
    fn zero_rate_deficit_is_never_conformant() {
        let mut tb = TokenBucket::new(8_000, 500);
        assert!(tb.try_consume(t(0), 500));
        tb.reconfigure(t(0), 0, 500);
        assert_eq!(tb.time_until_conformant(t(0), 1), SimTime::MAX);
        // But a request the residual tokens can cover conforms now.
        let mut tb2 = TokenBucket::new(8_000, 500);
        tb2.reconfigure(t(0), 0, 500);
        assert_eq!(tb2.time_until_conformant(t(0), 500), t(0));
    }

    #[test]
    fn refill_across_link_down_gap_caps_at_depth() {
        // A link outage stops traffic entirely; the bucket idles with
        // lazy refill. When traffic resumes after the gap, exactly one
        // full burst is available — the dead time does not bank extra.
        let mut tb = TokenBucket::new(8_000, 500); // 1000 B/s
        assert!(tb.try_consume(t(0), 500));
        // 60 s outage would nominally refill 60_000 bytes.
        let gap_end = t(60_000);
        assert!((tb.available(gap_end) - 500.0).abs() < 1e-6);
        assert!(tb.try_consume(gap_end, 500));
        assert!(!tb.try_consume(gap_end, 1));
        // And the refill clock restarts from the gap's end, not its start.
        assert!(tb.try_consume(t(60_100), 100));
        assert!(!tb.try_consume(t(60_100), 1));
    }

    #[test]
    fn burst_exactly_at_capacity_conforms_once() {
        let mut tb = TokenBucket::new(8_000, 1_500);
        // A burst of exactly the bucket depth conforms in one consume...
        assert!(tb.try_consume(t(0), 1_500));
        // ...but one byte more would not have, and strict policing means
        // the failed attempt leaves the level untouched.
        let mut tb2 = TokenBucket::new(8_000, 1_500);
        assert!(!tb2.try_consume(t(0), 1_501));
        assert!((tb2.available(t(0)) - 1_500.0).abs() < 1e-6);
        assert!(tb2.try_consume(t(0), 1_500));
    }
}
