//! The network world: nodes, channels, event dispatch.
//!
//! [`Net`] owns everything below the transport layer: links and their
//! queues, routers with DiffServ edge classifiers, per-host CPUs (the DSRT
//! model) and egress shapers. Transport protocols and applications live
//! *above* it, in an object implementing [`NetHandler`]; `Net` hands
//! host-level occurrences (packet arrivals, timers, CPU completions) up to
//! the handler and never calls into itself re-entrantly, which keeps the
//! borrow structure simple and the event order deterministic.

use crate::classifier::FlowSpec;
use crate::classifier::{Classifier, Verdict};
use crate::faults::{FaultAction, FaultLayer, FaultPlan, FaultStats, FaultVerdict};
use crate::lifecycle::{PacketTracer, SpanKind, DEFAULT_MAX_SPANS};
use crate::link::{Chan, ChanId, LinkCfg};
use crate::packet::{NodeId, Packet};
use crate::queue::{Enqueue, Queue, QueueCfg, QueueStats};
use crate::shaper::{ShapeOutcome, Shaper};
use crate::tokenbucket::TokenBucket;
use mpichgq_dsrt::{AdmissionError, CompleteOutcome, Cpu, ProcId, Update, WorkId};
use mpichgq_obs::{CounterId, JsonWriter, Obs, Timeline};
use mpichgq_sim::{fnv1a, Engine, Recorder, SchedulerKind, SimDelta, SimRng, SimTime};

/// What kind of node this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Host,
    Router,
}

/// A host or router.
pub struct Node {
    pub kind: NodeKind,
    pub name: String,
    /// Outgoing channels, in creation order.
    pub ifaces: Vec<ChanId>,
    /// Edge-ingress classifier (routers; applied to packets arriving on
    /// channels flagged `edge_ingress`).
    pub classifier: Classifier,
    /// Host CPU model (hosts).
    pub cpu: Cpu,
    /// Egress traffic shapers (hosts).
    pub shapers: Vec<Shaper>,
    next_shaper_id: u64,
}

impl Node {
    fn new(kind: NodeKind, name: String) -> Self {
        Node {
            kind,
            name,
            ifaces: Vec::new(),
            classifier: Classifier::new(),
            cpu: Cpu::new(),
            shapers: Vec::new(),
            next_shaper_id: 0,
        }
    }
}

/// Internal event type.
#[derive(Debug)]
pub enum Ev {
    /// Transmission of the head packet on `chan` finished.
    TxDone { chan: ChanId },
    /// `pkt` arrives at `chan.to`.
    Deliver { chan: ChanId, pkt: Packet },
    /// A transport/application timer on a host.
    HostTimer { host: NodeId, token: u64 },
    /// A CPU work item may have completed.
    CpuDone {
        host: NodeId,
        work: WorkId,
        gen: u64,
    },
    /// A host egress shaper can release queued packets.
    ShaperRelease { host: NodeId, shaper: u64, gen: u64 },
    /// Scenario-script control point.
    Control { token: u64 },
    /// A scripted fault from an installed [`FaultPlan`] fires.
    Fault { action: FaultAction },
    /// A windowed `CpuThrottle` lapsed: re-derive the host's effective
    /// rate from the windows still active (restoring the baseline once
    /// the last one is gone).
    ThrottleExpire { host: NodeId },
}

/// Upper layers (transport stacks, scenario controllers) implement this.
pub trait NetHandler {
    /// A packet addressed to `host` arrived.
    fn deliver(&mut self, net: &mut Net, host: NodeId, pkt: Packet);
    /// A timer set via [`Net::set_host_timer`] fired.
    fn host_timer(&mut self, net: &mut Net, host: NodeId, token: u64);
    /// A CPU work item of `proc` on `host` completed.
    fn cpu_done(&mut self, net: &mut Net, host: NodeId, proc: ProcId);
    /// A control point set via [`Net::schedule_control`] was reached.
    fn control(&mut self, net: &mut Net, token: u64);
    /// A timeline sampling tick at `at` (see [`Net::enable_timeline`]).
    /// Called after the network's own samples for that tick; the handler
    /// records upper-layer series via [`Net::timeline_record_counter`] /
    /// [`Net::timeline_record_gauge`]. Must be read-only with respect to
    /// simulated state — recording series is the only permitted effect —
    /// so that sampling never perturbs the event stream. Default: no-op.
    fn timeline_sample(&mut self, net: &mut Net, at: SimTime) {
        let _ = (net, at);
    }
    /// A `HostCrash` fault took `host` down. The network has already
    /// silenced the host (egress purged, tx/rx gated); the handler kills
    /// everything it runs there — applications, sockets, CPU work — and
    /// notifies peers. Default: no-op.
    fn host_crashed(&mut self, net: &mut Net, host: NodeId) {
        let _ = (net, host);
    }
    /// A `HostRestart` fault brought `host` back. The handler re-creates
    /// whatever should survive a reboot (e.g. respawning a checkpointed
    /// MPI rank). Default: no-op.
    fn host_restarted(&mut self, net: &mut Net, host: NodeId) {
        let _ = (net, host);
    }
}

/// A service that contributes series to the sampling timeline. Upper
/// layers (the TCP stack's service registry, in practice) route
/// [`NetHandler::timeline_sample`] ticks to every registered source. The
/// same read-only contract applies: record series, touch nothing else.
pub trait TimelineSource {
    /// Record this source's series for the tick at `at`.
    fn timeline_sample(&mut self, net: &mut Net, at: SimTime);
}

/// Global drop accounting, by cause.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropStats {
    /// Dropped by an edge policer (out of profile).
    pub policed: u64,
    /// Dropped at an interface queue — tail drops plus RED/WRED early
    /// drops (the conservation ledger treats both as the same loss cause).
    pub queue_full: u64,
    /// Of `queue_full`, how many were RED/WRED early drops. Informational
    /// subcount; not a separate ledger column.
    pub red_early: u64,
    /// Arrived at a host that was not the destination (routing bug guard).
    pub misrouted: u64,
}

/// One interface's row of the conservation ledger (see [`Net::audit`]).
#[derive(Debug, Clone, Copy)]
pub struct ChanAudit {
    pub chan: ChanId,
    /// Packets accepted into the interface queue (all classes).
    pub enqueued: u64,
    /// Packets popped from the queue for transmission.
    pub dequeued: u64,
    /// Packets waiting in the queue right now.
    pub queued_pkts: u64,
    /// Packets whose serialization started.
    pub tx_packets: u64,
    /// Packets whose propagation completed (counted before fault verdicts).
    pub rx_packets: u64,
    /// Packets popped from the queue by a `HostCrash` purge instead of a
    /// transmission (accounted as `faults.drops.host_down`).
    pub purged: u64,
    pub prio_inversions: u64,
}

impl ChanAudit {
    /// Packets currently serialized onto this wire.
    pub fn wire_in_flight(&self) -> u64 {
        self.tx_packets.saturating_sub(self.rx_packets)
    }

    /// The per-interface identity: every packet accepted into the queue was
    /// either popped or is still queued, every pop started a transmission
    /// (or was a crash purge), and nothing arrived off the wire that was
    /// never put on it.
    pub fn conserved(&self) -> bool {
        self.enqueued == self.dequeued + self.queued_pkts
            && self.dequeued == self.tx_packets + self.purged
            && self.rx_packets <= self.tx_packets
    }
}

/// Instantaneous cross-layer packet ledger produced by [`Net::audit`].
#[derive(Debug, Clone)]
pub struct NetAudit {
    /// Packets injected at hosts ([`Net::send_ip`]).
    pub sent: u64,
    /// Packets handed to the destination host's transport.
    pub delivered: u64,
    /// Dropped by an edge policer.
    pub policed: u64,
    /// Dropped by a full interface queue.
    pub queue_full: u64,
    /// Dropped for lack of a route or a wrong-host arrival.
    pub misrouted: u64,
    /// Dropped by injected faults (link down, loss, corruption, host down).
    pub fault_drops: u64,
    /// Waiting in interface queues right now.
    pub queued_pkts: u64,
    /// Waiting in host egress shapers right now.
    pub shaper_pkts: u64,
    /// Serialized onto wires right now.
    pub wire_pkts: u64,
    /// Strict-priority violations observed by any queue.
    pub prio_inversions: u64,
    /// Scheduler self-audit violations (WFQ virtual time regressed, DRR
    /// rotation guard overflowed) observed by any queue.
    pub sched_violations: u64,
    /// Token-bucket levels observed outside `[0, depth]`.
    pub bucket_violations: u64,
    pub chans: Vec<ChanAudit>,
}

impl NetAudit {
    /// Where every injected packet is accounted right now.
    pub fn accounted(&self) -> u64 {
        self.delivered
            + self.policed
            + self.queue_full
            + self.misrouted
            + self.fault_drops
            + self.queued_pkts
            + self.shaper_pkts
            + self.wire_pkts
    }

    /// The global identity plus every per-interface ledger row.
    pub fn conserved(&self) -> bool {
        self.sent == self.accounted() && self.chans.iter().all(|c| c.conserved())
    }
}

/// Hop-count shortest-path next hops, flattened to one contiguous
/// row-major table: `next_hop[from * n + to]` is the outgoing channel
/// index, or [`RouteTable::NONE`]. One multiply-add and one load per
/// per-packet route lookup, no pointer chasing, no `Option` overhead in
/// the stored representation.
pub(crate) struct RouteTable {
    n: usize,
    next_hop: Vec<u32>,
}

impl RouteTable {
    const NONE: u32 = u32::MAX;

    pub(crate) fn new(n: usize) -> Self {
        RouteTable {
            n,
            next_hop: vec![Self::NONE; n * n],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, from: usize, to: usize, chan: ChanId) {
        self.next_hop[from * self.n + to] = chan.0;
    }

    #[inline]
    fn get(&self, from: NodeId, to: NodeId) -> Option<ChanId> {
        let raw = self.next_hop[from.0 as usize * self.n + to.0 as usize];
        if raw == Self::NONE {
            None
        } else {
            Some(ChanId(raw))
        }
    }
}

/// Pre-resolved registry ids for the per-packet counters, so the hot path
/// pays one vector add per increment (no name lookups).
struct NetCounters {
    pkts_sent: CounterId,
    pkts_delivered: CounterId,
}

impl NetCounters {
    fn register(obs: &mut Obs) -> NetCounters {
        NetCounters {
            pkts_sent: obs.metrics.counter("net.pkts.sent"),
            pkts_delivered: obs.metrics.counter("net.pkts.delivered"),
        }
    }
}

/// One cross-shard packet handoff (see [`crate::shard`]): produced by the
/// sender-owning shard in `try_start_tx`, exchanged at the next safe-time
/// barrier, and drained into the destination shard's engine under the
/// deterministic merge rule `(at, src_shard, seq)`.
#[derive(Debug)]
pub(crate) struct XMsg {
    /// Absolute delivery time: `tx_start + serialization + propagation`.
    pub(crate) at: SimTime,
    /// Shard that produced the message (merge-rule tie-break #2).
    pub(crate) src_shard: u32,
    /// Monotonic per-source-shard sequence (merge-rule tie-break #3).
    pub(crate) seq: u64,
    pub(crate) chan: ChanId,
    pub(crate) pkt: Packet,
}

/// Shard identity of a partitioned [`Net`] copy: which shard this copy
/// executes, the global node→shard map, and the outbox of cross-shard
/// deliveries produced since the last barrier. Boxed and `None` for
/// ordinary monolithic worlds, so the unpartitioned hot path pays one
/// pointer-null branch at the single handoff site.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    shard: u32,
    shard_of: std::sync::Arc<[u32]>,
    outbox: Vec<XMsg>,
    next_seq: u64,
    /// Parallel-engine self-profiling totals, updated at each window
    /// barrier via [`Net::shard_window_mark`]. All of them are pure
    /// functions of simulated state (the window schedule is lock-step),
    /// so they are invariant in the worker-thread count.
    windows: u64,
    windows_skipped: u64,
    cross_in: u64,
}

/// Multi-window SLO burn-rate thresholds. Burn is the deadline-miss rate
/// over a trailing window divided by the error budget: burn 1.0 means the
/// run is missing deadlines exactly as fast as the budget allows.
const BURN_FAST_TICKS: u64 = 5;
const BURN_SLOW_TICKS: u64 = 30;
const BURN_BUDGET: f64 = 0.01;
const BURN_ALERT: f64 = 1.0;

/// Hysteresis state for one burn window's alert threshold.
#[derive(Debug, Default)]
struct BurnEdge {
    over: bool,
}

impl BurnEdge {
    /// Update with this tick's burn; returns `Some(entered)` on an alert
    /// edge (crossing [`BURN_ALERT`] in either direction).
    fn update(&mut self, burn: f64) -> Option<bool> {
        let over = burn >= BURN_ALERT;
        let edge = over != self.over;
        self.over = over;
        edge.then_some(over)
    }
}

/// Deadline-miss burn rate over the trailing `window_ns` ending at
/// `at_ns`, read off the sampled `slo.misses` and `net.pkts.delivered`
/// step functions: `(Δmisses / Δdelivered) / BURN_BUDGET`, or `0.0` when
/// nothing was delivered in the window.
fn burn_over(tl: &Timeline, at_ns: u64, window_ns: u64) -> f64 {
    let t0 = at_ns.saturating_sub(window_ns);
    let miss = tl
        .counter_at("slo.misses", at_ns)
        .saturating_sub(tl.counter_at("slo.misses", t0));
    let delivered = tl
        .counter_at("net.pkts.delivered", at_ns)
        .saturating_sub(tl.counter_at("net.pkts.delivered", t0));
    if delivered == 0 {
        0.0
    } else {
        (miss as f64 / delivered as f64) / BURN_BUDGET
    }
}

/// Sampler state (see [`Net::enable_timeline`]). Boxed and `None` until
/// sampling is armed, so the disabled hot path pays one pointer-null
/// branch per `run_until` call — never per event.
#[derive(Debug)]
struct TimelineCtx {
    tl: Timeline,
    interval_ns: u64,
    /// Next unsampled grid boundary.
    next_ns: u64,
    /// Last instant actually sampled (grid boundary or finalize).
    last_ns: Option<u64>,
    /// Set while a sample tick is in progress; the timestamp
    /// [`Net::timeline_record_counter`] stamps probe samples with.
    cur_ns: Option<u64>,
    fast: BurnEdge,
    slow: BurnEdge,
}

/// The simulated network.
pub struct Net {
    engine: Engine<Ev>,
    nodes: Vec<Node>,
    chans: Vec<Chan>,
    queues: Vec<Queue>,
    routes: RouteTable,
    /// Reusable buffer for shaper releases (no per-event allocation).
    shaper_scratch: Vec<Packet>,
    pub recorder: Recorder,
    pub rng: SimRng,
    pub drops: DropStats,
    /// Shared observability bundle: live counters, the flight recorder,
    /// and the registry that [`Net::publish_metrics`] snapshots into.
    pub obs: Obs,
    ctrs: NetCounters,
    next_pkt_id: u64,
    /// Fault-injection state; `None` (one branch per delivery) until
    /// [`Net::install_fault_plan`] is called.
    faults: Option<Box<FaultLayer>>,
    /// Packet-lifecycle tracer; `None` (one branch per hook site) until
    /// [`Net::enable_packet_tracing`] is called.
    lifecycle: Option<Box<PacketTracer>>,
    /// Set when this `Net` is one shard of a partitioned world
    /// ([`crate::shard`]); `None` for monolithic worlds.
    shard: Option<Box<ShardCtx>>,
    /// Fixed-interval time-series sampler; `None` (sampling off, provably
    /// free) until [`Net::enable_timeline`] is called.
    timeline: Option<Box<TimelineCtx>>,
}

impl Net {
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        chans: Vec<Chan>,
        queues: Vec<Queue>,
        routes: RouteTable,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> Self {
        let mut obs = Obs::new();
        let ctrs = NetCounters::register(&mut obs);
        Net {
            engine: Engine::with_scheduler(scheduler),
            nodes,
            chans,
            queues,
            routes,
            shaper_scratch: Vec::new(),
            recorder: Recorder::new(),
            rng: SimRng::new(seed),
            drops: DropStats::default(),
            obs,
            ctrs,
            next_pkt_id: 0,
            faults: None,
            lifecycle: None,
            shard: None,
            timeline: None,
        }
    }

    /// Mark this copy as shard `shard` of a partitioned world. Only events
    /// for nodes this shard owns may ever enter its engine; the one
    /// mechanism that would violate that — a transmission whose channel
    /// lands on a foreign node — is diverted into the outbox instead (see
    /// `try_start_tx` and [`crate::shard`]).
    pub(crate) fn set_shard_ctx(&mut self, shard: u32, shard_of: std::sync::Arc<[u32]>) {
        assert_eq!(
            shard_of.len(),
            self.nodes.len(),
            "shard map covers a different topology"
        );
        assert!(
            self.shard.is_none(),
            "net is already bound to shard {}",
            self.shard.as_ref().unwrap().shard
        );
        assert!(
            self.lifecycle.is_none(),
            "packet lifecycle tracing is not shard-safe; trace a monolithic run"
        );
        self.shard = Some(Box::new(ShardCtx {
            shard,
            shard_of,
            outbox: Vec::new(),
            next_seq: 0,
            windows: 0,
            windows_skipped: 0,
            cross_in: 0,
        }));
    }

    /// Drain the cross-shard deliveries produced since the last call.
    pub(crate) fn take_outbox(&mut self) -> Vec<XMsg> {
        self.shard
            .as_mut()
            .map(|s| std::mem::take(&mut s.outbox))
            .unwrap_or_default()
    }

    /// Schedule one cross-shard delivery received at a barrier. The caller
    /// presents messages in merge order; `at` is always at or beyond the
    /// window edge, hence `>= now`, so this can never schedule into the past.
    pub(crate) fn inject_cross(&mut self, m: XMsg) {
        if let Some(sc) = self.shard.as_deref_mut() {
            sc.cross_in += 1;
        }
        self.engine.schedule(
            m.at,
            Ev::Deliver {
                chan: m.chan,
                pkt: m.pkt,
            },
        );
    }

    /// Record one parallel-engine window barrier for this shard: bump the
    /// self-profiling totals and, with sampling on, push the `shard{i}.*`
    /// series at the window edge `at_ns`. `injected` is the number of
    /// cross-shard messages drained from the inbox at this barrier;
    /// `skipped` is how many whole idle windows the schedule jumped since
    /// the previous barrier. No-op for monolithic worlds.
    pub(crate) fn shard_window_mark(&mut self, at_ns: u64, injected: u64, skipped: u64) {
        let Some(sc) = self.shard.as_deref_mut() else {
            return;
        };
        sc.windows += 1;
        sc.windows_skipped += skipped;
        let Some(ctx) = self.timeline.as_deref_mut() else {
            return;
        };
        let p = format!("shard{:02}", sc.shard);
        let tl = &mut ctx.tl;
        tl.push_counter(&format!("{p}.windows"), at_ns, sc.windows);
        tl.push_counter(&format!("{p}.windows_skipped"), at_ns, sc.windows_skipped);
        tl.push_counter(&format!("{p}.events"), at_ns, self.engine.processed());
        tl.push_counter(&format!("{p}.cross_out"), at_ns, sc.next_seq);
        tl.push_counter(&format!("{p}.cross_in"), at_ns, sc.cross_in);
        tl.push_gauge(&format!("{p}.inbox_depth"), at_ns, injected as f64);
        tl.push_gauge(
            &format!("{p}.pending_events"),
            at_ns,
            self.engine.len() as f64,
        );
    }

    /// Earliest pending event time, if any — drives the shard engine's
    /// idle-window skip.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.engine.peek_time()
    }

    /// FNV-1a digest of the world's externally observable physics: clock,
    /// event count, per-channel wire counters, and drop ledger. Two runs of
    /// the same world are bit-identical iff these digests match per shard;
    /// the parallel-engine determinism gates compare them across thread
    /// counts.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        put(self.now().as_nanos());
        put(self.engine.processed());
        put(self.chans.len() as u64);
        for c in &self.chans {
            put(c.tx_packets);
            put(c.tx_bytes_wire);
            put(c.rx_packets);
        }
        put(self.drops.policed);
        put(self.drops.queue_full);
        put(self.drops.misrouted);
        put(self.obs.metrics.counter_value("net.pkts.sent").unwrap_or(0));
        put(self
            .obs
            .metrics
            .counter_value("net.pkts.delivered")
            .unwrap_or(0));
        h
    }

    #[inline]
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Calendar-scheduler operation counters, for benchmark diagnostics.
    #[doc(hidden)]
    pub fn scheduler_stats(&self) -> Option<mpichgq_sim::CalendarStats> {
        self.engine.calendar_stats()
    }

    /// Number of events currently pending in the engine.
    pub fn pending_events(&self) -> usize {
        self.engine.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn chan(&self, id: ChanId) -> &Chan {
        &self.chans[id.0 as usize]
    }

    pub fn queue_stats(&self, id: ChanId) -> QueueStats {
        self.queues[id.0 as usize].stats()
    }

    /// The outgoing channel `from` uses to reach `to`, if any.
    #[inline]
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<ChanId> {
        self.routes.get(from, to)
    }

    /// Which scheduler backend drives this network's event engine.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.engine.scheduler_kind()
    }

    /// The sum of per-hop propagation delays from `a` to `b` (no queueing or
    /// serialization) — what the QoS agent uses for `bandwidth × delay`
    /// bucket sizing.
    pub fn path_delay(&self, a: NodeId, b: NodeId) -> Option<mpichgq_sim::SimDelta> {
        let mut cur = a;
        let mut total = mpichgq_sim::SimDelta::ZERO;
        let mut hops = 0;
        while cur != b {
            let chan = self.route(cur, b)?;
            let c = &self.chans[chan.0 as usize];
            total += c.cfg.delay;
            cur = c.to;
            hops += 1;
            if hops > self.nodes.len() {
                return None; // routing loop guard
            }
        }
        Some(total)
    }

    /// The ordered list of channels a packet from `a` to `b` traverses.
    pub fn path_chans(&self, a: NodeId, b: NodeId) -> Option<Vec<ChanId>> {
        let mut cur = a;
        let mut out = Vec::new();
        while cur != b {
            let chan = self.route(cur, b)?;
            out.push(chan);
            cur = self.chans[chan.0 as usize].to;
            if out.len() > self.nodes.len() {
                return None;
            }
        }
        Some(out)
    }

    /// All directed channels, for resource-manager registration sweeps.
    pub fn chan_ids(&self) -> impl Iterator<Item = ChanId> {
        (0..self.chans.len() as u32).map(ChanId)
    }

    /// Flag a channel as edge ingress, so the downstream router classifies
    /// arrivals on it. Host→router channels are flagged automatically; use
    /// this for inter-domain router links, where "the ingress router of a
    /// domain \[polices\] the premium aggregate" (§5.1).
    pub fn set_edge_ingress(&mut self, chan: ChanId, flag: bool) {
        self.chans[chan.0 as usize].edge_ingress = flag;
    }

    /// Allocate a fresh packet id (for tracing).
    pub fn alloc_pkt_id(&mut self) -> u64 {
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        id
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Install a [`FaultPlan`]: every scripted action is scheduled through
    /// the engine and fires in event order at its scripted time. The first
    /// installed plan's seed initializes the fault layer's private RNG;
    /// further plans add actions to the same layer.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(sc) = self.shard.as_deref() {
            // A channel's fault state is consulted on both sides of the
            // wire (tx gate in the owner-of-`from` copy, delivery verdict
            // in the owner-of-`to` copy), so faults on cross-shard channels
            // would need replicated state. Reject them instead of silently
            // diverging.
            for &(_, action) in plan.actions() {
                let chan = match action {
                    FaultAction::LinkDown(c) | FaultAction::LinkUp(c) => Some(c),
                    FaultAction::LossBurst { chan, .. }
                    | FaultAction::CorruptBurst { chan, .. } => Some(chan),
                    FaultAction::CpuThrottle { host, .. }
                    | FaultAction::HostCrash { host }
                    | FaultAction::HostRestart { host } => {
                        assert_eq!(
                            sc.shard_of[host.0 as usize], sc.shard,
                            "fault plan targets host {} owned by shard {}, \
                             but this net is shard {}; install the plan on the \
                             owning shard",
                            host.0, sc.shard_of[host.0 as usize], sc.shard
                        );
                        None
                    }
                };
                if let Some(c) = chan {
                    let ch = &self.chans[c.0 as usize];
                    let (sf, st) = (
                        sc.shard_of[ch.from.0 as usize],
                        sc.shard_of[ch.to.0 as usize],
                    );
                    assert!(
                        sf == sc.shard && st == sc.shard,
                        "fault plan targets chan {} ({} -> {}, shards {} -> {}), \
                         which is not fully owned by shard {}; faults on \
                         cross-shard links are not shard-safe",
                        c.0,
                        ch.from.0,
                        ch.to.0,
                        sf,
                        st,
                        sc.shard
                    );
                }
            }
        }
        for &(_, action) in plan.actions() {
            if let FaultAction::HostCrash { host } | FaultAction::HostRestart { host } = action {
                assert_eq!(
                    self.nodes[host.0 as usize].kind,
                    NodeKind::Host,
                    "HostCrash/HostRestart targets node {} ({}), which is a \
                     router; only hosts crash",
                    host.0,
                    self.nodes[host.0 as usize].name
                );
            }
        }
        if self.faults.is_none() {
            self.faults = Some(Box::new(FaultLayer::new(
                plan.seed(),
                self.chans.len(),
                self.nodes.len(),
            )));
        }
        for &(at, action) in plan.actions() {
            self.engine.schedule(at, Ev::Fault { action });
        }
    }

    /// Drop accounting of the fault layer, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Whether `chan` is currently cut by a fault.
    pub fn link_is_down(&self, chan: ChanId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_down(chan))
    }

    /// Whether `host` is currently crashed by a `HostCrash` fault.
    pub fn host_is_down(&self, host: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.host_is_down(host))
    }

    fn apply_fault(&mut self, action: FaultAction) {
        let now = self.now();
        let Some(f) = self.faults.as_mut() else {
            return; // plan-scheduled events always find the layer installed
        };
        match action {
            FaultAction::LinkDown(chan) => {
                f.set_down(chan, true);
                self.obs
                    .trace
                    .record(now, "fault.link_down", chan.0 as u64, 0);
            }
            FaultAction::LinkUp(chan) => {
                f.set_down(chan, false);
                self.obs
                    .trace
                    .record(now, "fault.link_up", chan.0 as u64, 0);
                // Resume draining whatever queued up during the outage.
                self.try_start_tx(chan);
            }
            FaultAction::LossBurst {
                chan,
                per_mille,
                duration,
            } => {
                f.set_loss(chan, per_mille, now + duration);
                self.obs
                    .trace
                    .record(now, "fault.loss_burst", chan.0 as u64, per_mille as i64);
            }
            FaultAction::CorruptBurst {
                chan,
                per_mille,
                duration,
            } => {
                f.set_corrupt(chan, per_mille, now + duration);
                self.obs
                    .trace
                    .record(now, "fault.corrupt_burst", chan.0 as u64, per_mille as i64);
            }
            FaultAction::CpuThrottle {
                host,
                per_mille,
                duration,
            } => {
                self.obs
                    .trace
                    .record(now, "fault.cpu_throttle", host.0 as u64, per_mille as i64);
                f.set_throttle(host, per_mille, duration.map(|d| now + d));
                if let Some(d) = duration {
                    self.engine.schedule(now + d, Ev::ThrottleExpire { host });
                }
                let eff = self
                    .faults
                    .as_mut()
                    .expect("checked above")
                    .effective_throttle(host, now);
                self.cpu_set_throttle(host, eff as f64 / 1000.0);
            }
            // Handled in `dispatch`, which has the handler to notify.
            FaultAction::HostCrash { .. } | FaultAction::HostRestart { .. } => {
                unreachable!("host faults are dispatched with the handler")
            }
        }
    }

    /// Take `host` down: silence its egress (purge queued and shaper-held
    /// packets into the `drops.host_down` ledger column), gate its future
    /// tx/rx, and hand the crash up to the handler so applications die.
    /// A crash of an already-dead host is a no-op.
    fn host_crash<H: NetHandler>(&mut self, host: NodeId, h: &mut H) {
        let now = self.now();
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        if !f.set_host_down(host, true) {
            return;
        }
        self.obs
            .trace
            .record(now, "fault.host_crash", host.0 as u64, 0);
        let mut purged: u64 = 0;
        // Egress interface queues: pop (so the queue ledger still balances)
        // and charge each packet to the crash instead of a transmission.
        let ifaces = self.nodes[host.0 as usize].ifaces.clone();
        for chan in ifaces {
            while let Some(pkt) = self.queues[chan.0 as usize].pop() {
                self.chans[chan.0 as usize].purged += 1;
                purged += 1;
                self.obs.trace.record(
                    now,
                    "fault.drop.host_down",
                    chan.0 as u64,
                    pkt.ip_len() as i64,
                );
                if let Some(t) = self.lifecycle.as_deref_mut() {
                    t.on_drop(now, pkt.id, SpanKind::DropFault, chan.0);
                }
            }
        }
        // Shaper backlogs die with the host. Bumping the generation lazily
        // cancels any armed release event.
        for s in &mut self.nodes[host.0 as usize].shapers {
            s.gen += 1;
            s.armed = false;
            for pkt in std::mem::take(&mut s.queue) {
                purged += 1;
                self.obs.trace.record(
                    now,
                    "fault.drop.host_down",
                    host.0 as u64,
                    pkt.ip_len() as i64,
                );
                if let Some(t) = self.lifecycle.as_deref_mut() {
                    t.on_drop(now, pkt.id, SpanKind::DropFault, u32::MAX);
                }
            }
        }
        self.faults
            .as_mut()
            .expect("checked above")
            .stats
            .drops_host_down += purged;
        h.host_crashed(self, host);
    }

    /// Bring a crashed `host` back: tx/rx gates lift, the effective CPU
    /// throttle is re-applied, and the handler runs its restart hooks.
    /// Restarting a live host is a no-op.
    fn host_restart<H: NetHandler>(&mut self, host: NodeId, h: &mut H) {
        let now = self.now();
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        if !f.set_host_down(host, false) {
            return;
        }
        self.obs
            .trace
            .record(now, "fault.host_restart", host.0 as u64, 0);
        let eff = self
            .faults
            .as_mut()
            .expect("checked above")
            .effective_throttle(host, now);
        self.cpu_set_throttle(host, eff as f64 / 1000.0);
        h.host_restarted(self, host);
    }

    // ------------------------------------------------------------------
    // Packet-lifecycle tracing + SLO conformance
    // ------------------------------------------------------------------

    /// Turn on packet-lifecycle tracing with the default span bound.
    /// Until this (or [`Net::set_deadline_matching`]) is called, every
    /// lifecycle hook is a single predictable branch.
    pub fn enable_packet_tracing(&mut self) {
        self.enable_packet_tracing_with(DEFAULT_MAX_SPANS);
    }

    /// Turn on packet-lifecycle tracing, retaining at most `max_spans`
    /// lifecycle spans (histograms and SLO counters are unbounded either
    /// way; spans past the bound are counted, not kept). Re-enabling
    /// keeps existing tracer state.
    pub fn enable_packet_tracing_with(&mut self, max_spans: usize) {
        // A cross-shard packet's span would start in the sender's tracer
        // and end in the receiver's — neither copy sees a whole lifecycle,
        // so tracing a shard would publish misleading SLO numbers.
        assert!(
            self.shard.is_none(),
            "packet lifecycle tracing is not shard-safe; trace a monolithic run"
        );
        if self.lifecycle.is_none() {
            self.lifecycle = Some(Box::new(PacketTracer::new(max_spans)));
        }
    }

    /// Whether lifecycle tracing is on.
    pub fn packet_tracing_enabled(&self) -> bool {
        self.lifecycle.is_some()
    }

    /// The lifecycle tracer, if tracing is enabled.
    pub fn packet_tracer(&self) -> Option<&PacketTracer> {
        self.lifecycle.as_deref()
    }

    /// Install a delivery deadline for every flow matching `spec` (current
    /// and future; a flow's first matching rule wins). Deliveries later
    /// than `deadline` after [`Packet::born`] count as SLO misses: per-flow
    /// miss counters and miss-streak high-water marks update, and a
    /// `slo.miss` event (key = flow index, value = delay in ns) lands in
    /// the flight recorder. Enables lifecycle tracing if it was off.
    pub fn set_deadline_matching(&mut self, spec: FlowSpec, deadline: SimDelta) {
        self.enable_packet_tracing();
        self.lifecycle
            .as_deref_mut()
            .expect("just enabled")
            .add_deadline_rule(spec, deadline.as_nanos());
    }

    /// Export the lifecycle span log as a Chrome trace-event JSON document
    /// (loadable in Perfetto / `chrome://tracing`; see
    /// [`crate::lifecycle`] for the layout). With tracing disabled this
    /// returns an empty-but-valid trace document.
    pub fn chrome_trace_json(&self) -> String {
        let mut w = JsonWriter::new();
        match &self.lifecycle {
            Some(t) => {
                let names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
                t.write_chrome_trace(&mut w, &self.chans, &names);
            }
            None => {
                w.begin_object();
                w.key("traceEvents");
                w.begin_array();
                w.end_array();
                w.key("displayTimeUnit");
                w.string("ms");
                w.end_object();
            }
        }
        w.finish()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Publish every component-local statistic into the shared registry:
    /// engine totals, drop causes, per-interface queue counters and
    /// high-water marks, per-rule policer counters and token-bucket levels,
    /// and per-shaper pacing state. Live counters (packets sent/delivered,
    /// anything other layers incremented) are already there; this makes the
    /// registry a complete picture of the run at the moment of the call.
    pub fn publish_metrics(&mut self) {
        let now = self.now();
        let m = &mut self.obs.metrics;
        m.record_total("engine.events_processed", self.engine.processed());
        m.set_gauge("engine.pending_events", self.engine.len() as f64);
        if let Some(cs) = self.engine.calendar_stats() {
            m.record_total("engine.calendar.rebuilds", cs.rebuilds);
            m.record_total("engine.calendar.fallbacks", cs.fallbacks);
            m.record_total("engine.calendar.scan_steps", cs.scan_steps);
            m.record_total("engine.calendar.slow_pushes", cs.slow_pushes);
        }
        m.record_total("net.drops.policed", self.drops.policed);
        m.record_total("net.drops.queue_full", self.drops.queue_full);
        m.record_total("net.drops.misrouted", self.drops.misrouted);
        if let Some(f) = &self.faults {
            m.record_total("faults.drops.link_down", f.stats.drops_link_down);
            m.record_total("faults.drops.loss", f.stats.drops_loss);
            m.record_total("faults.drops.corrupt", f.stats.drops_corrupt);
            m.record_total("faults.link_downs", f.stats.link_downs);
            m.record_total("faults.link_ups", f.stats.link_ups);
            // Host-fault keys appear only when a crash actually happened,
            // so legacy snapshots stay byte-identical.
            if f.stats.host_crashes + f.stats.host_restarts > 0 {
                m.record_total("faults.drops.host_down", f.stats.drops_host_down);
                m.record_total("faults.host_crashes", f.stats.host_crashes);
                m.record_total("faults.host_restarts", f.stats.host_restarts);
            }
        }

        let mut early = [0u64; 3]; // qdisc.* aggregates: [ef, af, be]
        let mut sched_violations = 0u64;
        for (i, q) in self.queues.iter().enumerate() {
            let st = q.stats();
            early[0] += st.early_ef;
            early[1] += st.early_af.iter().sum::<u64>();
            early[2] += st.early_be;
            sched_violations += st.sched_violations;
            if st.enq_be
                + st.enq_ef
                + st.enq_af
                + st.drop_be
                + st.drop_ef
                + st.drop_af
                + st.early_total()
                == 0
            {
                continue; // idle interface: keep snapshots readable
            }
            let c = &self.chans[i];
            let p = format!("iface{i:03}");
            m.record_total(&format!("{p}.enq_ef"), st.enq_ef);
            m.record_total(&format!("{p}.enq_be"), st.enq_be);
            m.record_total(&format!("{p}.drop_ef"), st.drop_ef);
            m.record_total(&format!("{p}.drop_be"), st.drop_be);
            m.record_total(&format!("{p}.dequeued"), st.dequeued);
            m.record_total(&format!("{p}.bytes_dequeued"), st.bytes_dequeued);
            m.record_total(&format!("{p}.tx_packets"), c.tx_packets);
            m.record_total(&format!("{p}.tx_bytes_wire"), c.tx_bytes_wire);
            m.record_total(&format!("{p}.rx_packets"), c.rx_packets);
            m.record_total(&format!("{p}.prio_inversions"), st.prio_inversions);
            m.set_gauge(&format!("{p}.hw_ef_bytes"), st.hw_ef_bytes as f64);
            m.set_gauge(&format!("{p}.hw_be_bytes"), st.hw_be_bytes as f64);
            m.set_gauge(&format!("{p}.backlog_bytes"), q.backlog_bytes() as f64);
            m.set_gauge(&format!("{p}.backlog_pkts"), q.len() as f64);
            // AF- and AQM-era keys appear only when that machinery actually
            // ran, so legacy snapshots stay byte-identical.
            if st.enq_af > 0 {
                m.record_total(&format!("{p}.enq_af"), st.enq_af);
            }
            if st.drop_af > 0 {
                m.record_total(&format!("{p}.drop_af"), st.drop_af);
            }
            if st.hw_af_bytes > 0 {
                m.set_gauge(&format!("{p}.hw_af_bytes"), st.hw_af_bytes as f64);
            }
            if st.early_ef > 0 {
                m.record_total(&format!("{p}.early_ef"), st.early_ef);
            }
            if st.early_be > 0 {
                m.record_total(&format!("{p}.early_be"), st.early_be);
            }
            for (prec, &n) in st.early_af.iter().enumerate() {
                if n > 0 {
                    m.record_total(&format!("{p}.early_af{prec}"), n);
                }
            }
            if st.sched_violations > 0 {
                m.record_total(&format!("{p}.sched_violations"), st.sched_violations);
            }
        }
        if self.drops.red_early > 0 {
            m.record_total("net.drops.red_early", self.drops.red_early);
        }
        if early[0] > 0 {
            m.record_total("qdisc.early_drops.ef", early[0]);
        }
        if early[1] > 0 {
            m.record_total("qdisc.early_drops.af", early[1]);
        }
        if early[2] > 0 {
            m.record_total("qdisc.early_drops.be", early[2]);
        }
        if sched_violations > 0 {
            m.record_total("qdisc.sched_violations", sched_violations);
        }

        for (n, node) in self.nodes.iter_mut().enumerate() {
            let cs = node.classifier.stats();
            if cs.marked_ef + cs.demoted + cs.marked_af + cs.remarked > 0 {
                m.record_total(&format!("node{n:03}.marked_ef"), cs.marked_ef);
                m.record_total(&format!("node{n:03}.demoted"), cs.demoted);
                if cs.marked_af > 0 {
                    m.record_total(&format!("node{n:03}.marked_af"), cs.marked_af);
                }
                if cs.remarked > 0 {
                    m.record_total(&format!("node{n:03}.remarked"), cs.remarked);
                }
            }
            for r in node.classifier.rules_mut() {
                let p = format!("node{n:03}.rule{:03}", r.id);
                m.record_total(&format!("{p}.conformant_pkts"), r.stats.conformant_pkts);
                m.record_total(&format!("{p}.conformant_bytes"), r.stats.conformant_bytes);
                m.record_total(&format!("{p}.policed_pkts"), r.stats.policed_pkts);
                m.record_total(&format!("{p}.policed_bytes"), r.stats.policed_bytes);
                if let Some(tb) = &mut r.policer {
                    m.set_gauge(&format!("{p}.bucket_level_bytes"), tb.available(now));
                }
            }
            for s in &mut node.shapers {
                let p = format!("node{n:03}.shaper{:03}", s.id);
                m.record_total(&format!("{p}.passed"), s.stats.passed);
                m.record_total(&format!("{p}.delayed"), s.stats.delayed);
                m.set_gauge(&format!("{p}.backlog_bytes"), s.backlog_bytes() as f64);
                m.set_gauge(&format!("{p}.backlog_pkts"), s.queue.len() as f64);
                m.set_gauge(
                    &format!("{p}.max_backlog_bytes"),
                    s.stats.max_backlog_bytes as f64,
                );
                m.set_gauge(&format!("{p}.bucket_level_bytes"), s.bucket.available(now));
            }
        }

        if let Some(sc) = self.shard.as_deref() {
            let p = format!("shard{:02}", sc.shard);
            m.record_total(&format!("{p}.windows"), sc.windows);
            m.record_total(&format!("{p}.windows_skipped"), sc.windows_skipped);
            m.record_total(&format!("{p}.events"), self.engine.processed());
            m.record_total(&format!("{p}.cross_out"), sc.next_seq);
            m.record_total(&format!("{p}.cross_in"), sc.cross_in);
        }

        if let Some(t) = &self.lifecycle {
            t.publish(m);
        }
    }

    /// [`Net::publish_metrics`] followed by a full JSON snapshot — what the
    /// experiment binaries write to `results/<experiment>/metrics.json`.
    /// With lifecycle tracing on, the snapshot carries per-flow delay and
    /// jitter histograms plus per-class queue-wait histograms under
    /// `"histograms"`, and the deadline-conformance report under `"slo"`.
    pub fn metrics_json(&mut self) -> String {
        self.publish_metrics();
        match &self.lifecycle {
            Some(t) => {
                let mut w = JsonWriter::new();
                t.write_slo_json(&mut w);
                let slo = w.finish();
                self.obs.snapshot_json_with(&[("slo", &slo)])
            }
            None => self.obs.snapshot_json(),
        }
    }

    // ------------------------------------------------------------------
    // Time-series sampling
    // ------------------------------------------------------------------

    /// Arm the fixed-interval time-series sampler. From the next grid
    /// boundary on, every [`Net::run_until`] stops the clock at each
    /// multiple of `interval` it crosses and records one sample of every
    /// instrumented series. The boundaries are pure clock stops: no events
    /// are scheduled, the pop order is untouched, and nothing consults the
    /// RNG, so an armed run executes the exact event sequence a disarmed
    /// run would. Until this is called, sampling costs one pointer-null
    /// branch per `run_until` call.
    pub fn enable_timeline(&mut self, interval: SimDelta) {
        let i = interval.as_nanos();
        assert!(i > 0, "timeline interval must be positive");
        assert!(
            self.timeline.is_none(),
            "timeline sampling is already enabled"
        );
        let next_ns = (self.now().as_nanos() / i + 1) * i;
        self.timeline = Some(Box::new(TimelineCtx {
            tl: Timeline::new(i),
            interval_ns: i,
            next_ns,
            last_ns: None,
            cur_ns: None,
            fast: BurnEdge::default(),
            slow: BurnEdge::default(),
        }));
    }

    /// Whether the time-series sampler is armed.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline.is_some()
    }

    /// The timeline sampled so far, if the sampler is armed.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_deref().map(|c| &c.tl)
    }

    /// Detach and return the sampled timeline, disarming the sampler.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take().map(|c| c.tl)
    }

    /// Serialize the sampled timeline as deterministic JSON (the
    /// `results/<experiment>/timeline.json` document), if armed.
    pub fn timeline_json(&self) -> Option<String> {
        self.timeline.as_deref().map(|c| c.tl.to_json())
    }

    /// Push one cumulative-counter sample from inside a sample tick —
    /// the API [`TimelineSource`] probes and [`NetHandler::timeline_sample`]
    /// implementations record through. Outside a tick (or with sampling
    /// off) this is a no-op, so probes can call it unconditionally.
    pub fn timeline_record_counter(&mut self, name: &str, v: u64) {
        if let Some(ctx) = self.timeline.as_deref_mut() {
            if let Some(t) = ctx.cur_ns {
                ctx.tl.push_counter(name, t, v);
            }
        }
    }

    /// Gauge twin of [`Net::timeline_record_counter`].
    pub fn timeline_record_gauge(&mut self, name: &str, v: f64) {
        if let Some(ctx) = self.timeline.as_deref_mut() {
            if let Some(t) = ctx.cur_ns {
                ctx.tl.push_gauge(name, t, v);
            }
        }
    }

    /// Take one final sample at `at` unless the grid already sampled that
    /// exact instant — so every series ends precisely at the end of the
    /// run regardless of grid alignment. Call once, after the final
    /// [`Net::run_until`].
    pub fn timeline_finalize<H: NetHandler>(&mut self, h: &mut H, at: SimTime) {
        let at_ns = at.as_nanos();
        let due = match self.timeline.as_deref() {
            Some(c) => c.last_ns != Some(at_ns),
            None => false,
        };
        if due {
            self.timeline_sample_tick(h, at_ns);
        }
    }

    /// One sample tick at grid boundary (or finalize instant) `at_ns`:
    /// core netsim series, then registry sweep, then handler probes, then
    /// the SLO burn-rate windows.
    fn timeline_sample_tick<H: NetHandler>(&mut self, h: &mut H, at_ns: u64) {
        let Some(mut ctx) = self.timeline.take() else {
            return;
        };
        ctx.cur_ns = Some(at_ns);
        ctx.last_ns = Some(at_ns);
        self.sample_core(&mut ctx.tl, at_ns);
        // Live counters and gauges (anything other layers increment in
        // place) are always current in the registry; sweeping them after
        // the explicit pushes means explicitly sampled series are already
        // marked live and skipped.
        for (name, v) in self.obs.metrics.counters() {
            ctx.tl.sweep_counter(name, at_ns, v);
        }
        for (name, v) in self.obs.metrics.gauges() {
            ctx.tl.sweep_gauge(name, at_ns, v);
        }
        self.timeline = Some(ctx);
        h.timeline_sample(self, SimTime::from_nanos(at_ns));
        self.timeline_burn_tick(at_ns);
        if let Some(ctx) = self.timeline.as_deref_mut() {
            ctx.cur_ns = None;
        }
    }

    /// Sample every component-local statistic [`Net::publish_metrics`]
    /// publishes, with identical names and identical activity gating — so
    /// the final sample of each cumulative series equals the end-of-run
    /// registry counter (the `timeline_consistency` invariant). The one
    /// deliberate read-path difference: token-bucket levels use
    /// [`TokenBucket::peek_available`], because the mutating refill is not
    /// bit-idempotent under splitting and would perturb later conformance
    /// decisions.
    fn sample_core(&mut self, tl: &mut Timeline, at_ns: u64) {
        let at = SimTime::from_nanos(at_ns);
        tl.push_counter("engine.events_processed", at_ns, self.engine.processed());
        tl.push_gauge("engine.pending_events", at_ns, self.engine.len() as f64);
        if let Some(cs) = self.engine.calendar_stats() {
            tl.push_counter("engine.calendar.rebuilds", at_ns, cs.rebuilds);
            tl.push_counter("engine.calendar.fallbacks", at_ns, cs.fallbacks);
            tl.push_counter("engine.calendar.scan_steps", at_ns, cs.scan_steps);
            tl.push_counter("engine.calendar.slow_pushes", at_ns, cs.slow_pushes);
        }
        tl.push_counter("net.drops.policed", at_ns, self.drops.policed);
        tl.push_counter("net.drops.queue_full", at_ns, self.drops.queue_full);
        tl.push_counter("net.drops.misrouted", at_ns, self.drops.misrouted);
        if self.drops.red_early > 0 {
            tl.push_counter("net.drops.red_early", at_ns, self.drops.red_early);
        }
        if let Some(f) = &self.faults {
            tl.push_counter("faults.drops.link_down", at_ns, f.stats.drops_link_down);
            tl.push_counter("faults.drops.loss", at_ns, f.stats.drops_loss);
            tl.push_counter("faults.drops.corrupt", at_ns, f.stats.drops_corrupt);
            tl.push_counter("faults.link_downs", at_ns, f.stats.link_downs);
            tl.push_counter("faults.link_ups", at_ns, f.stats.link_ups);
            // Same activity gate as publish_metrics (timeline_consistency).
            if f.stats.host_crashes + f.stats.host_restarts > 0 {
                tl.push_counter("faults.drops.host_down", at_ns, f.stats.drops_host_down);
                tl.push_counter("faults.host_crashes", at_ns, f.stats.host_crashes);
                tl.push_counter("faults.host_restarts", at_ns, f.stats.host_restarts);
            }
        }

        let mut early = [0u64; 3];
        let mut sched_violations = 0u64;
        for (i, q) in self.queues.iter().enumerate() {
            let st = q.stats();
            early[0] += st.early_ef;
            early[1] += st.early_af.iter().sum::<u64>();
            early[2] += st.early_be;
            sched_violations += st.sched_violations;
            if st.enq_be
                + st.enq_ef
                + st.enq_af
                + st.drop_be
                + st.drop_ef
                + st.drop_af
                + st.early_total()
                == 0
            {
                continue; // same idle-interface gate as publish_metrics
            }
            let c = &self.chans[i];
            let p = format!("iface{i:03}");
            tl.push_counter(&format!("{p}.enq_ef"), at_ns, st.enq_ef);
            tl.push_counter(&format!("{p}.enq_be"), at_ns, st.enq_be);
            tl.push_counter(&format!("{p}.drop_ef"), at_ns, st.drop_ef);
            tl.push_counter(&format!("{p}.drop_be"), at_ns, st.drop_be);
            tl.push_counter(&format!("{p}.dequeued"), at_ns, st.dequeued);
            tl.push_counter(&format!("{p}.bytes_dequeued"), at_ns, st.bytes_dequeued);
            tl.push_counter(&format!("{p}.tx_packets"), at_ns, c.tx_packets);
            tl.push_counter(&format!("{p}.tx_bytes_wire"), at_ns, c.tx_bytes_wire);
            tl.push_counter(&format!("{p}.rx_packets"), at_ns, c.rx_packets);
            tl.push_counter(&format!("{p}.prio_inversions"), at_ns, st.prio_inversions);
            tl.push_gauge(&format!("{p}.hw_ef_bytes"), at_ns, st.hw_ef_bytes as f64);
            tl.push_gauge(&format!("{p}.hw_be_bytes"), at_ns, st.hw_be_bytes as f64);
            tl.push_gauge(
                &format!("{p}.backlog_bytes"),
                at_ns,
                q.backlog_bytes() as f64,
            );
            tl.push_gauge(&format!("{p}.backlog_pkts"), at_ns, q.len() as f64);
            // Per-class occupancy is timeline-only: instantaneous queue
            // composition is exactly what a fixed-interval series is for,
            // while a point-in-time registry gauge of it would be noise.
            let cb = q.class_backlog_bytes();
            tl.push_gauge(&format!("{p}.backlog_ef_bytes"), at_ns, cb[0] as f64);
            tl.push_gauge(&format!("{p}.backlog_af_bytes"), at_ns, cb[1] as f64);
            tl.push_gauge(&format!("{p}.backlog_be_bytes"), at_ns, cb[2] as f64);
            if st.enq_af > 0 {
                tl.push_counter(&format!("{p}.enq_af"), at_ns, st.enq_af);
            }
            if st.drop_af > 0 {
                tl.push_counter(&format!("{p}.drop_af"), at_ns, st.drop_af);
            }
            if st.hw_af_bytes > 0 {
                tl.push_gauge(&format!("{p}.hw_af_bytes"), at_ns, st.hw_af_bytes as f64);
            }
            if st.early_ef > 0 {
                tl.push_counter(&format!("{p}.early_ef"), at_ns, st.early_ef);
            }
            if st.early_be > 0 {
                tl.push_counter(&format!("{p}.early_be"), at_ns, st.early_be);
            }
            for (prec, &n) in st.early_af.iter().enumerate() {
                if n > 0 {
                    tl.push_counter(&format!("{p}.early_af{prec}"), at_ns, n);
                }
            }
            if st.sched_violations > 0 {
                tl.push_counter(&format!("{p}.sched_violations"), at_ns, st.sched_violations);
            }
        }
        if early[0] > 0 {
            tl.push_counter("qdisc.early_drops.ef", at_ns, early[0]);
        }
        if early[1] > 0 {
            tl.push_counter("qdisc.early_drops.af", at_ns, early[1]);
        }
        if early[2] > 0 {
            tl.push_counter("qdisc.early_drops.be", at_ns, early[2]);
        }
        if sched_violations > 0 {
            tl.push_counter("qdisc.sched_violations", at_ns, sched_violations);
        }

        // A sharded copy samples only the nodes it executes: foreign
        // copies hold zeroed classifier/shaper state, and their gauges
        // must not appear k-fold in the per-shard timelines a merge sums.
        let shard = self
            .shard
            .as_deref()
            .map(|sc| (sc.shard, sc.shard_of.clone()));
        for (n, node) in self.nodes.iter().enumerate() {
            if let Some((s, map)) = &shard {
                if map[n] != *s {
                    continue;
                }
            }
            let cs = node.classifier.stats();
            if cs.marked_ef + cs.demoted + cs.marked_af + cs.remarked > 0 {
                tl.push_counter(&format!("node{n:03}.marked_ef"), at_ns, cs.marked_ef);
                tl.push_counter(&format!("node{n:03}.demoted"), at_ns, cs.demoted);
                if cs.marked_af > 0 {
                    tl.push_counter(&format!("node{n:03}.marked_af"), at_ns, cs.marked_af);
                }
                if cs.remarked > 0 {
                    tl.push_counter(&format!("node{n:03}.remarked"), at_ns, cs.remarked);
                }
            }
            for r in node.classifier.rules() {
                let p = format!("node{n:03}.rule{:03}", r.id);
                tl.push_counter(
                    &format!("{p}.conformant_pkts"),
                    at_ns,
                    r.stats.conformant_pkts,
                );
                tl.push_counter(
                    &format!("{p}.conformant_bytes"),
                    at_ns,
                    r.stats.conformant_bytes,
                );
                tl.push_counter(&format!("{p}.policed_pkts"), at_ns, r.stats.policed_pkts);
                tl.push_counter(&format!("{p}.policed_bytes"), at_ns, r.stats.policed_bytes);
                if let Some(tb) = &r.policer {
                    tl.push_gauge(
                        &format!("{p}.bucket_level_bytes"),
                        at_ns,
                        tb.peek_available(at),
                    );
                }
            }
            for s in &node.shapers {
                let p = format!("node{n:03}.shaper{:03}", s.id);
                tl.push_counter(&format!("{p}.passed"), at_ns, s.stats.passed);
                tl.push_counter(&format!("{p}.delayed"), at_ns, s.stats.delayed);
                tl.push_gauge(
                    &format!("{p}.backlog_bytes"),
                    at_ns,
                    s.backlog_bytes() as f64,
                );
                tl.push_gauge(&format!("{p}.backlog_pkts"), at_ns, s.queue.len() as f64);
                tl.push_gauge(
                    &format!("{p}.max_backlog_bytes"),
                    at_ns,
                    s.stats.max_backlog_bytes as f64,
                );
                tl.push_gauge(
                    &format!("{p}.bucket_level_bytes"),
                    at_ns,
                    s.bucket.peek_available(at),
                );
            }
        }

        if let Some(t) = &self.lifecycle {
            tl.push_counter("slo.misses", at_ns, t.total_misses());
        }
    }

    /// Compute the multi-window SLO burn rates off the just-sampled series
    /// and record threshold crossings in the flight recorder. Burn is the
    /// deadline-miss rate over a trailing window divided by the error
    /// budget ([`BURN_BUDGET`]); the fast window reacts in
    /// [`BURN_FAST_TICKS`] intervals, the slow window smooths over
    /// [`BURN_SLOW_TICKS`].
    fn timeline_burn_tick(&mut self, at_ns: u64) {
        if self.lifecycle.is_none() {
            return;
        }
        let Some(mut ctx) = self.timeline.take() else {
            return;
        };
        let fast = burn_over(&ctx.tl, at_ns, ctx.interval_ns * BURN_FAST_TICKS);
        let slow = burn_over(&ctx.tl, at_ns, ctx.interval_ns * BURN_SLOW_TICKS);
        ctx.tl.push_gauge("slo.burn.fast", at_ns, fast);
        ctx.tl.push_gauge("slo.burn.slow", at_ns, slow);
        let fe = ctx.fast.update(fast);
        let se = ctx.slow.update(slow);
        self.timeline = Some(ctx);
        let at = SimTime::from_nanos(at_ns);
        if let Some(entered) = fe {
            let kind = if entered { "slo.burn" } else { "slo.burn.ok" };
            self.obs.trace.record(at, kind, 1, (fast * 1000.0) as i64);
        }
        if let Some(entered) = se {
            let kind = if entered { "slo.burn" } else { "slo.burn.ok" };
            self.obs.trace.record(at, kind, 2, (slow * 1000.0) as i64);
        }
    }

    /// Take a cross-layer conservation snapshot (the qcheck invariant
    /// battery's raw material). Valid at *any* instant, not just after a
    /// drain: every packet ever injected by [`Net::send_ip`] is, right now,
    /// exactly one of delivered / dropped-for-a-named-cause / waiting in a
    /// shaper or interface queue / serialized onto a wire.
    pub fn audit(&mut self) -> NetAudit {
        let now = self.now();
        let mut chans = Vec::with_capacity(self.chans.len());
        let mut queued_pkts = 0u64;
        let mut wire_pkts = 0u64;
        let mut prio_inversions = 0u64;
        let mut sched_violations = 0u64;
        for (i, c) in self.chans.iter().enumerate() {
            let q = &self.queues[i];
            let st = q.stats();
            let ca = ChanAudit {
                chan: ChanId(i as u32),
                enqueued: st.enq_be + st.enq_ef + st.enq_af,
                dequeued: st.dequeued,
                queued_pkts: q.len(),
                tx_packets: c.tx_packets,
                rx_packets: c.rx_packets,
                purged: c.purged,
                prio_inversions: st.prio_inversions,
            };
            queued_pkts += ca.queued_pkts;
            wire_pkts += ca.wire_in_flight();
            prio_inversions += ca.prio_inversions;
            sched_violations += st.sched_violations;
            chans.push(ca);
        }
        let mut shaper_pkts = 0u64;
        let mut bucket_violations = 0u64;
        const EPS: f64 = 1e-6;
        for node in &mut self.nodes {
            for r in node.classifier.rules_mut() {
                if let Some(tb) = &mut r.policer {
                    let level = tb.available(now);
                    if !(-EPS..=tb.depth_bytes() as f64 + EPS).contains(&level) {
                        bucket_violations += 1;
                    }
                }
            }
            for s in &mut node.shapers {
                shaper_pkts += s.queue.len() as u64;
                let level = s.bucket.available(now);
                if !(-EPS..=s.bucket.depth_bytes() as f64 + EPS).contains(&level) {
                    bucket_violations += 1;
                }
            }
        }
        let fault_drops = self
            .faults
            .as_ref()
            .map(|f| {
                f.stats.drops_link_down
                    + f.stats.drops_loss
                    + f.stats.drops_corrupt
                    + f.stats.drops_host_down
            })
            .unwrap_or(0);
        NetAudit {
            sent: self.obs.metrics.counter_value("net.pkts.sent").unwrap_or(0),
            delivered: self
                .obs
                .metrics
                .counter_value("net.pkts.delivered")
                .unwrap_or(0),
            policed: self.drops.policed,
            queue_full: self.drops.queue_full,
            misrouted: self.drops.misrouted,
            fault_drops,
            queued_pkts,
            shaper_pkts,
            wire_pkts,
            prio_inversions,
            sched_violations,
            bucket_violations,
            chans,
        }
    }

    // ------------------------------------------------------------------
    // Transport-facing API
    // ------------------------------------------------------------------

    /// Inject `pkt` at its source host. The packet passes the host's egress
    /// shapers, then is routed toward `pkt.dst`.
    pub fn send_ip(&mut self, mut pkt: Packet) {
        let src = pkt.src;
        debug_assert_eq!(self.nodes[src.0 as usize].kind, NodeKind::Host);
        // A dead host sources nothing: the packet is never counted as sent,
        // so the conservation ledger never owes it anywhere. (The handler
        // killed the host's apps at crash time; this gate catches stragglers
        // driven by cross-host state.)
        if self.host_is_down(src) {
            return;
        }
        pkt.id = self.alloc_pkt_id();
        self.obs.metrics.inc(self.ctrs.pkts_sent, 1);
        let now = self.now();
        pkt.born = now;
        if let Some(t) = self.lifecycle.as_deref_mut() {
            t.on_send(now, &pkt);
        }
        // Egress shaping (first matching shaper wins). Single scan: the
        // match position doubles as the index for the mutable borrow.
        let node = &mut self.nodes[src.0 as usize];
        if let Some(pos) = node.shapers.iter().position(|s| s.spec.matches(&pkt)) {
            let s = &mut node.shapers[pos];
            let sid = s.id;
            let pid = pkt.id;
            match s.offer(now, pkt) {
                ShapeOutcome::PassThrough(p) => self.forward_from(src, p),
                ShapeOutcome::Queued { arm_at } => {
                    if let Some(t) = self.lifecycle.as_deref_mut() {
                        t.on_shaped(now, pid);
                    }
                    if let Some(at) = arm_at {
                        let gen = s.gen;
                        self.engine.schedule(
                            at,
                            Ev::ShaperRelease {
                                host: src,
                                shaper: sid,
                                gen,
                            },
                        );
                    }
                }
            }
        } else {
            self.forward_from(src, pkt);
        }
    }

    /// Arm a host-level timer; the handler receives (`host`, `token`).
    pub fn set_host_timer(&mut self, host: NodeId, at: SimTime, token: u64) {
        self.engine.schedule(at, Ev::HostTimer { host, token });
    }

    /// Arm a scenario control point.
    pub fn schedule_control(&mut self, at: SimTime, token: u64) {
        self.engine.schedule(at, Ev::Control { token });
    }

    // ------------------------------------------------------------------
    // CPU (DSRT) API
    // ------------------------------------------------------------------

    pub fn cpu_add_process(&mut self, host: NodeId) -> ProcId {
        self.nodes[host.0 as usize].cpu.add_process()
    }

    pub fn cpu_spawn_hog(&mut self, host: NodeId) -> ProcId {
        let now = self.now();
        let (pid, ups) = self.nodes[host.0 as usize].cpu.spawn_hog(now);
        self.apply_cpu_updates(host, ups);
        pid
    }

    pub fn cpu_remove_process(&mut self, host: NodeId, pid: ProcId) {
        let now = self.now();
        let ups = self.nodes[host.0 as usize].cpu.remove_process(now, pid);
        self.apply_cpu_updates(host, ups);
    }

    pub fn cpu_set_reservation(
        &mut self,
        host: NodeId,
        pid: ProcId,
        fraction: Option<f64>,
    ) -> Result<(), AdmissionError> {
        let now = self.now();
        let ups = self.nodes[host.0 as usize]
            .cpu
            .set_reservation(now, pid, fraction)?;
        self.apply_cpu_updates(host, ups);
        Ok(())
    }

    pub fn cpu_start_work(
        &mut self,
        host: NodeId,
        pid: ProcId,
        cpu_time: mpichgq_sim::SimDelta,
    ) -> WorkId {
        let now = self.now();
        let (wid, ups) = self.nodes[host.0 as usize]
            .cpu
            .start_work(now, pid, cpu_time);
        self.apply_cpu_updates(host, ups);
        wid
    }

    pub fn cpu_share_of(&self, host: NodeId, pid: ProcId) -> f64 {
        self.nodes[host.0 as usize].cpu.share_of(pid)
    }

    /// Throttle `host`'s whole CPU to `factor` of its capacity (`1.0`
    /// restores full speed) — see [`mpichgq_dsrt::Cpu::set_throttle`].
    pub fn cpu_set_throttle(&mut self, host: NodeId, factor: f64) {
        let now = self.now();
        let ups = self.nodes[host.0 as usize].cpu.set_throttle(now, factor);
        self.apply_cpu_updates(host, ups);
    }

    fn apply_cpu_updates(&mut self, host: NodeId, updates: Vec<Update>) {
        for u in updates {
            self.engine.schedule(
                u.eta,
                Ev::CpuDone {
                    host,
                    work: u.work,
                    gen: u.gen,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // QoS configuration API (used by GARA resource managers)
    // ------------------------------------------------------------------

    /// Install an egress shaper on `host`; returns its id.
    pub fn install_shaper(&mut self, host: NodeId, spec: FlowSpec, bucket: TokenBucket) -> u64 {
        let node = &mut self.nodes[host.0 as usize];
        let id = node.next_shaper_id;
        node.next_shaper_id += 1;
        node.shapers.push(Shaper::new(id, spec, bucket));
        id
    }

    /// Remove a shaper, forwarding anything still queued inside it.
    pub fn remove_shaper(&mut self, host: NodeId, id: u64) -> bool {
        let node = &mut self.nodes[host.0 as usize];
        let Some(pos) = node.shapers.iter().position(|s| s.id == id) else {
            return false;
        };
        let s = node.shapers.remove(pos);
        for p in s.queue {
            self.forward_from(host, p);
        }
        true
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Run until `limit`, dispatching host-level events to `h`. The clock
    /// ends exactly at `limit` (or the last event, whichever is later).
    pub fn run_until<H: NetHandler>(&mut self, h: &mut H, limit: SimTime) {
        if self.timeline.is_some() {
            return self.run_until_sampled(h, limit);
        }
        while let Some((_, ev)) = self.engine.pop_until(limit) {
            self.dispatch(ev, h);
        }
    }

    /// [`Net::run_until`] with the sampler armed: drain events up to each
    /// grid boundary `<= limit`, take one sample there, continue. The
    /// catch-up loop makes the sampled grid a pure function of the clock,
    /// not of call granularity — a windowed (or sharded) run stopping at
    /// arbitrary intermediate limits samples the identical instants one
    /// monolithic `run_until(t_end)` would.
    fn run_until_sampled<H: NetHandler>(&mut self, h: &mut H, limit: SimTime) {
        let limit_ns = limit.as_nanos();
        loop {
            let next = match self.timeline.as_deref() {
                Some(c) if c.next_ns <= limit_ns => c.next_ns,
                _ => break,
            };
            let b = SimTime::from_nanos(next);
            while let Some((_, ev)) = self.engine.pop_until(b) {
                self.dispatch(ev, h);
            }
            self.timeline_sample_tick(h, next);
            if let Some(c) = self.timeline.as_deref_mut() {
                c.next_ns = next + c.interval_ns;
            }
        }
        while let Some((_, ev)) = self.engine.pop_until(limit) {
            self.dispatch(ev, h);
        }
    }

    /// Run until the event queue drains (useful in tests).
    pub fn run_to_quiescence<H: NetHandler>(&mut self, h: &mut H) {
        while let Some((_, ev)) = self.engine.pop() {
            self.dispatch(ev, h);
        }
    }

    fn dispatch<H: NetHandler>(&mut self, ev: Ev, h: &mut H) {
        match ev {
            Ev::TxDone { chan } => {
                self.chans[chan.0 as usize].busy = false;
                self.try_start_tx(chan);
            }
            Ev::Deliver { chan, pkt } => {
                // Off the wire: from here the packet is either delivered,
                // forwarded, or accounted to a named drop cause — never
                // silently in flight. The conservation audit depends on
                // this increment preceding the fault verdict.
                self.chans[chan.0 as usize].rx_packets += 1;
                if let Some(f) = self.faults.as_mut() {
                    let now = self.engine.now();
                    // A dead endpoint trumps every per-channel verdict: a
                    // crashed sender's in-flight packets vanish, and a
                    // crashed receiver hears nothing. The probabilistic
                    // loss/corruption draws are skipped entirely, so the
                    // private RNG stream is untouched by the outage.
                    let (cf, ct) = {
                        let c = &self.chans[chan.0 as usize];
                        (c.from, c.to)
                    };
                    let verdict = if f.host_is_down(cf) || f.host_is_down(ct) {
                        f.note_host_down_drop();
                        FaultVerdict::DropHostDown
                    } else {
                        f.deliver_verdict(now, chan)
                    };
                    if verdict != FaultVerdict::Deliver {
                        self.obs.trace.record(
                            now,
                            verdict.trace_kind(),
                            chan.0 as u64,
                            pkt.ip_len() as i64,
                        );
                        if let Some(t) = self.lifecycle.as_deref_mut() {
                            t.on_drop(now, pkt.id, SpanKind::DropFault, chan.0);
                        }
                        return;
                    }
                }
                self.on_deliver(chan, pkt, h)
            }
            Ev::HostTimer { host, token } => {
                // Timers armed before a crash stay scheduled; they fire into
                // the void while the host is down. (The stack additionally
                // drops stale tokens after a restart — its demux maps were
                // cleared at crash time.)
                if self.host_is_down(host) {
                    return;
                }
                h.host_timer(self, host, token)
            }
            Ev::CpuDone { host, work, gen } => {
                if self.host_is_down(host) {
                    return;
                }
                let now = self.now();
                match self.nodes[host.0 as usize].cpu.complete(now, work, gen) {
                    CompleteOutcome::Stale => {}
                    CompleteOutcome::Done { proc, updates } => {
                        self.apply_cpu_updates(host, updates);
                        h.cpu_done(self, host, proc);
                    }
                }
            }
            Ev::ShaperRelease { host, shaper, gen } => {
                if self.host_is_down(host) {
                    return; // the crash purge bumped the gen anyway
                }
                let now = self.now();
                let node = &mut self.nodes[host.0 as usize];
                let Some(s) = node.shapers.iter_mut().find(|s| s.id == shaper) else {
                    return;
                };
                // Drain into the reusable scratch buffer; `forward_from`
                // never touches it, so taking it out of `self` is safe.
                let mut pkts = std::mem::take(&mut self.shaper_scratch);
                pkts.clear();
                let next = s.release_into(now, gen, &mut pkts);
                if let Some(at) = next {
                    let g = s.gen;
                    self.engine.schedule(
                        at,
                        Ev::ShaperRelease {
                            host,
                            shaper,
                            gen: g,
                        },
                    );
                }
                for p in pkts.drain(..) {
                    self.forward_from(host, p);
                }
                self.shaper_scratch = pkts;
            }
            Ev::Control { token } => h.control(self, token),
            Ev::Fault { action } => match action {
                FaultAction::HostCrash { host } => self.host_crash(host, h),
                FaultAction::HostRestart { host } => self.host_restart(host, h),
                other => self.apply_fault(other),
            },
            Ev::ThrottleExpire { host } => {
                let now = self.now();
                let Some(f) = self.faults.as_mut() else {
                    return;
                };
                let eff = f.effective_throttle(host, now);
                self.obs
                    .trace
                    .record(now, "fault.cpu_throttle", host.0 as u64, eff as i64);
                self.cpu_set_throttle(host, eff as f64 / 1000.0);
            }
        }
    }

    fn on_deliver<H: NetHandler>(&mut self, chan: ChanId, mut pkt: Packet, h: &mut H) {
        let arrival = &self.chans[chan.0 as usize];
        let node_id = arrival.to;
        let edge = arrival.edge_ingress;
        match self.nodes[node_id.0 as usize].kind {
            NodeKind::Router => {
                if edge {
                    let now = self.now();
                    match self.nodes[node_id.0 as usize]
                        .classifier
                        .classify(now, &mut pkt)
                    {
                        Verdict::Forward => {}
                        Verdict::Drop => {
                            self.drops.policed += 1;
                            self.obs.trace.record(
                                now,
                                "drop.policed",
                                node_id.0 as u64,
                                pkt.ip_len() as i64,
                            );
                            if let Some(t) = self.lifecycle.as_deref_mut() {
                                t.on_drop(now, pkt.id, SpanKind::DropPoliced, chan.0);
                            }
                            return;
                        }
                    }
                }
                self.forward_from(node_id, pkt);
            }
            NodeKind::Host => {
                if pkt.dst == node_id {
                    // Tripwire, not a gate: the dispatch-time host-down drop
                    // must make this unreachable for a dead host. The qcheck
                    // `dead_host_delivery` invariant convicts any regression.
                    if let Some(f) = self.faults.as_mut() {
                        if f.host_is_down(node_id) {
                            f.stats.dead_deliveries += 1;
                        }
                    }
                    self.obs.metrics.inc(self.ctrs.pkts_delivered, 1);
                    if let Some(t) = self.lifecycle.as_deref_mut() {
                        let now = self.engine.now();
                        t.on_delivered(now, &pkt, &mut self.obs.trace);
                    }
                    h.deliver(self, node_id, pkt);
                } else {
                    self.drops.misrouted += 1;
                }
            }
        }
    }

    #[inline]
    fn forward_from(&mut self, node: NodeId, pkt: Packet) {
        let Some(chan) = self.route(node, pkt.dst) else {
            self.drops.misrouted += 1;
            return;
        };
        let len = pkt.ip_len();
        let pid = pkt.id;
        match self.queues[chan.0 as usize].enqueue(pkt) {
            Enqueue::Queued => {
                if let Some(t) = self.lifecycle.as_deref_mut() {
                    let now = self.engine.now();
                    t.on_enqueue(now, pid);
                }
                self.try_start_tx(chan)
            }
            Enqueue::DroppedFull => {
                self.drops.queue_full += 1;
                let now = self.now();
                self.obs
                    .trace
                    .record(now, "drop.queue_full", chan.0 as u64, len as i64);
                if let Some(t) = self.lifecycle.as_deref_mut() {
                    t.on_drop(now, pid, SpanKind::DropQueueFull, chan.0);
                }
            }
            // RED/WRED early drops share the queue-loss ledger column (so
            // conservation identities and fingerprints are discipline-
            // independent) but trace under their own label.
            Enqueue::DroppedEarly => {
                self.drops.queue_full += 1;
                self.drops.red_early += 1;
                let now = self.now();
                self.obs
                    .trace
                    .record(now, "drop.red_early", chan.0 as u64, len as i64);
                if let Some(t) = self.lifecycle.as_deref_mut() {
                    t.on_drop(now, pid, SpanKind::DropRedEarly, chan.0);
                }
            }
        }
    }

    fn try_start_tx(&mut self, chan: ChanId) {
        let c = &mut self.chans[chan.0 as usize];
        if c.busy {
            return;
        }
        // A cut channel transmits nothing; queued packets wait for LinkUp.
        // A crashed host's interfaces transmit nothing either (its queues
        // were purged at crash time; this also stops a race with packets
        // enqueued in the same instant).
        if let Some(f) = &self.faults {
            if f.is_down(chan) || f.host_is_down(self.chans[chan.0 as usize].from) {
                return;
            }
        }
        let Some(pkt) = self.queues[chan.0 as usize].pop() else {
            return;
        };
        let c = &mut self.chans[chan.0 as usize];
        c.busy = true;
        let ser = c.serialization(pkt.ip_len());
        c.tx_packets += 1;
        c.tx_bytes_wire += c.cfg.framing.wire_bytes(pkt.ip_len()) as u64;
        let delay = c.cfg.delay;
        let to = c.to;
        let now = self.now();
        if let Some(t) = self.lifecycle.as_deref_mut() {
            t.on_tx_start(now, &pkt, chan, ser.as_nanos(), delay.as_nanos());
        }
        self.engine.schedule(now + ser, Ev::TxDone { chan });
        let deliver_at = now + ser + delay;
        match self.shard.as_deref_mut() {
            // The cross-shard handoff: the delivery lands on a node a
            // foreign shard owns, so it leaves as an outbox message instead
            // of an engine event. `deliver_at >= now + delay >= window end`
            // (lookahead bound), so the receiver sees it strictly in its
            // future.
            Some(sc) if sc.shard_of[to.0 as usize] != sc.shard => {
                let seq = sc.next_seq;
                sc.next_seq += 1;
                sc.outbox.push(XMsg {
                    at: deliver_at,
                    src_shard: sc.shard,
                    seq,
                    chan,
                    pkt,
                });
            }
            _ => self.engine.schedule(deliver_at, Ev::Deliver { chan, pkt }),
        }
    }
}

/// Builds topologies: add nodes, connect them, then [`TopoBuilder::build`].
pub struct TopoBuilder {
    nodes: Vec<Node>,
    chans: Vec<Chan>,
    queues: Vec<Queue>,
    seed: u64,
    scheduler: SchedulerKind,
}

impl TopoBuilder {
    pub fn new(seed: u64) -> Self {
        TopoBuilder {
            nodes: Vec::new(),
            chans: Vec::new(),
            queues: Vec::new(),
            seed,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Choose the event-scheduler backend for the built network.
    pub fn scheduler(&mut self, kind: SchedulerKind) -> &mut Self {
        self.scheduler = kind;
        self
    }

    pub fn host(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(NodeKind::Host, name.to_owned()));
        id
    }

    pub fn router(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes
            .push(Node::new(NodeKind::Router, name.to_owned()));
        id
    }

    /// Connect `a` and `b` with a symmetric full-duplex link. Host-to-router
    /// links are flagged as edge ingress on the router side. Returns the two
    /// directed channels `(a→b, b→a)`.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg: LinkCfg,
        queue: QueueCfg,
    ) -> (ChanId, ChanId) {
        let ab = self.add_chan(a, b, cfg, queue);
        let ba = self.add_chan(b, a, cfg, queue);
        (ab, ba)
    }

    /// Connect with different per-direction configurations.
    pub fn link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        cfg_ab: LinkCfg,
        q_ab: QueueCfg,
        cfg_ba: LinkCfg,
        q_ba: QueueCfg,
    ) -> (ChanId, ChanId) {
        let ab = self.add_chan(a, b, cfg_ab, q_ab);
        let ba = self.add_chan(b, a, cfg_ba, q_ba);
        (ab, ba)
    }

    fn add_chan(&mut self, from: NodeId, to: NodeId, cfg: LinkCfg, queue: QueueCfg) -> ChanId {
        let id = ChanId(self.chans.len() as u32);
        let edge_ingress = self.nodes[from.0 as usize].kind == NodeKind::Host
            && self.nodes[to.0 as usize].kind == NodeKind::Router;
        self.chans.push(Chan {
            from,
            to,
            cfg,
            edge_ingress,
            busy: false,
            tx_packets: 0,
            tx_bytes_wire: 0,
            rx_packets: 0,
            purged: 0,
        });
        // Seed each queue's discipline RNG (RED/WRED draws) from the
        // topology seed and the channel index alone, so a shard worker
        // rebuilding its slice of the topology reproduces the exact
        // per-interface drop streams (DESIGN.md §15 shard-locality).
        let mut seed_bytes = [0u8; 16];
        seed_bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        seed_bytes[8..].copy_from_slice(&(id.0 as u64).to_le_bytes());
        self.queues
            .push(Queue::with_seed(queue, fnv1a(&seed_bytes)));
        self.nodes[from.0 as usize].ifaces.push(id);
        id
    }

    /// Number of nodes added so far (partition maps must cover them all).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-channel `(from, to, propagation delay)` triples, for partition
    /// validation and lookahead computation (see [`crate::shard`]).
    pub(crate) fn chan_meta(&self) -> impl Iterator<Item = (usize, usize, SimDelta)> + '_ {
        self.chans
            .iter()
            .map(|c| (c.from.0 as usize, c.to.0 as usize, c.cfg.delay))
    }

    /// Compute hop-count shortest-path routes and freeze the topology.
    pub fn build(self) -> Net {
        let n = self.nodes.len();
        let mut routes = RouteTable::new(n);
        // BFS from every destination, walking reverse edges.
        for dst in 0..n {
            let mut dist = vec![u32::MAX; n];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::new();
            frontier.push_back(dst);
            while let Some(cur) = frontier.pop_front() {
                // All channels arriving at `cur` come from predecessors.
                for (ci, c) in self.chans.iter().enumerate() {
                    if c.to.0 as usize != cur {
                        continue;
                    }
                    let pred = c.from.0 as usize;
                    if dist[pred] == u32::MAX {
                        dist[pred] = dist[cur] + 1;
                        routes.set(pred, dst, ChanId(ci as u32));
                        frontier.push_back(pred);
                    }
                }
            }
        }
        Net::from_parts(
            self.nodes,
            self.chans,
            self.queues,
            routes,
            self.seed,
            self.scheduler,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Framing;
    use crate::packet::{Dscp, L4};
    use mpichgq_sim::SimDelta;

    struct Collect {
        got: Vec<(SimTime, NodeId, u64)>,
        timers: Vec<(SimTime, u64)>,
    }
    impl Collect {
        fn new() -> Self {
            Collect {
                got: Vec::new(),
                timers: Vec::new(),
            }
        }
    }
    impl NetHandler for Collect {
        fn deliver(&mut self, net: &mut Net, host: NodeId, pkt: Packet) {
            self.got.push((net.now(), host, pkt.id));
        }
        fn host_timer(&mut self, net: &mut Net, _host: NodeId, token: u64) {
            self.timers.push((net.now(), token));
        }
        fn cpu_done(&mut self, _net: &mut Net, _host: NodeId, _proc: ProcId) {}
        fn control(&mut self, _net: &mut Net, _token: u64) {}
    }

    fn line_topology() -> (Net, NodeId, NodeId) {
        // h1 -- r -- h2, 8 Mb/s, 1 ms per link, no framing overhead.
        let mut b = TopoBuilder::new(1);
        let h1 = b.host("h1");
        let r = b.router("r");
        let h2 = b.host("h2");
        let cfg = LinkCfg {
            bandwidth_bps: 8_000_000,
            delay: SimDelta::from_millis(1),
            framing: Framing::None,
        };
        b.link(h1, r, cfg, QueueCfg::droptail_default());
        b.link(r, h2, cfg, QueueCfg::droptail_default());
        (b.build(), h1, h2)
    }

    fn udp(src: NodeId, dst: NodeId, payload: u32) -> Packet {
        Packet {
            src,
            dst,
            src_port: 1,
            dst_port: 2,
            dscp: Dscp::BestEffort,
            l4: L4::Udp,
            payload_len: payload,
            id: 0,
            born: SimTime::ZERO,
        }
    }

    #[test]
    fn end_to_end_latency_is_serialization_plus_delay() {
        let (mut net, h1, h2) = line_topology();
        let mut h = Collect::new();
        // ip_len = 28 + 972 = 1000 bytes; at 8 Mb/s, serialization = 1 ms.
        net.send_ip(udp(h1, h2, 972));
        net.run_to_quiescence(&mut h);
        assert_eq!(h.got.len(), 1);
        // 1 ms ser + 1 ms delay + 1 ms ser + 1 ms delay = 4 ms.
        assert_eq!(h.got[0].0, SimTime::from_millis(4));
        assert_eq!(h.got[0].1, h2);
    }

    #[test]
    fn pipeline_keeps_link_busy() {
        let (mut net, h1, h2) = line_topology();
        let mut h = Collect::new();
        for _ in 0..10 {
            net.send_ip(udp(h1, h2, 972));
        }
        net.run_to_quiescence(&mut h);
        assert_eq!(h.got.len(), 10);
        // Last packet: 10 ms of back-to-back serialization on hop 1, the
        // store-and-forward router adds one serialization, plus 2 ms delay.
        assert_eq!(h.got.last().unwrap().0, SimTime::from_millis(13));
    }

    #[test]
    fn host_timer_fires() {
        let (mut net, _h1, _h2) = line_topology();
        let mut h = Collect::new();
        net.set_host_timer(NodeId(0), SimTime::from_millis(5), 42);
        net.run_to_quiescence(&mut h);
        assert_eq!(h.timers, vec![(SimTime::from_millis(5), 42)]);
    }

    #[test]
    fn routing_loops_and_unreachable_are_guarded() {
        // Two disconnected hosts.
        let mut b = TopoBuilder::new(1);
        let h1 = b.host("h1");
        let _h2 = b.host("h2");
        let h3 = b.host("h3");
        let mut net = b.build();
        let mut h = Collect::new();
        net.send_ip(udp(h1, h3, 100));
        net.run_to_quiescence(&mut h);
        assert!(h.got.is_empty());
        assert_eq!(net.drops.misrouted, 1);
        assert!(net.path_delay(h1, h3).is_none());
    }

    #[test]
    fn path_delay_sums_hops() {
        let (net, h1, h2) = line_topology();
        assert_eq!(net.path_delay(h1, h2).unwrap(), SimDelta::from_millis(2));
        assert_eq!(net.path_delay(h1, h1).unwrap(), SimDelta::ZERO);
    }

    #[test]
    fn edge_policing_drops_out_of_profile_traffic() {
        let (mut net, h1, h2) = line_topology();
        let router = NodeId(1);
        // Police h1->h2 UDP at 8 Kb/s with a 2000-byte bucket; mark EF.
        net.node_mut(router).classifier.install(
            FlowSpec::host_pair(h1, h2, crate::packet::Proto::Udp),
            Dscp::Ef,
            Some(TokenBucket::new(8_000, 2_000)),
            crate::classifier::PolicingAction::Drop,
        );
        let mut h = Collect::new();
        for _ in 0..5 {
            net.send_ip(udp(h1, h2, 972)); // 1000-byte datagrams
        }
        net.run_to_quiescence(&mut h);
        // Bucket admits 2 packets; 3 are policed.
        assert_eq!(h.got.len(), 2);
        assert_eq!(net.drops.policed, 3);
    }

    #[test]
    fn shaper_delays_instead_of_dropping() {
        let (mut net, h1, h2) = line_topology();
        let router = NodeId(1);
        net.node_mut(router).classifier.install(
            FlowSpec::host_pair(h1, h2, crate::packet::Proto::Udp),
            Dscp::Ef,
            Some(TokenBucket::new(80_000, 2_000)),
            crate::classifier::PolicingAction::Drop,
        );
        // Shape at the same rate at the host: nothing should be policed.
        net.install_shaper(
            h1,
            FlowSpec::host_pair(h1, h2, crate::packet::Proto::Udp),
            TokenBucket::new(80_000, 2_000),
        );
        let mut h = Collect::new();
        for _ in 0..5 {
            net.send_ip(udp(h1, h2, 972));
        }
        net.run_to_quiescence(&mut h);
        assert_eq!(h.got.len(), 5, "shaped packets must all arrive");
        assert_eq!(net.drops.policed, 0);
    }

    #[test]
    fn cpu_done_reaches_handler() {
        struct CpuH {
            done_at: Option<SimTime>,
        }
        impl NetHandler for CpuH {
            fn deliver(&mut self, _n: &mut Net, _h: NodeId, _p: Packet) {}
            fn host_timer(&mut self, _n: &mut Net, _h: NodeId, _t: u64) {}
            fn cpu_done(&mut self, net: &mut Net, _host: NodeId, _proc: ProcId) {
                self.done_at = Some(net.now());
            }
            fn control(&mut self, _n: &mut Net, _t: u64) {}
        }
        let (mut net, h1, _h2) = line_topology();
        let pid = net.cpu_add_process(h1);
        net.cpu_spawn_hog(h1);
        net.cpu_start_work(h1, pid, SimDelta::from_secs(1));
        let mut h = CpuH { done_at: None };
        net.run_to_quiescence(&mut h);
        // 1 cpu-second at 50% share = 2 seconds.
        assert_eq!(h.done_at, Some(SimTime::from_secs(2)));
    }

    #[test]
    fn link_outage_queues_survivors_and_drops_in_flight() {
        let (mut net, h1, h2) = line_topology();
        let mut h = Collect::new();
        let trunk = net.route(NodeId(1), h2).unwrap(); // r -> h2
                                                       // Three packets at t=0; packet 1 starts serializing on r->h2 at
                                                       // 2 ms with its delivery due at 4 ms. Cutting the channel over
                                                       // [2.5 ms, 20 ms) catches that packet in flight while packets 2
                                                       // and 3 are still queued behind the cut.
        net.install_fault_plan(FaultPlan::new(5).link_outage(
            trunk,
            SimTime::from_micros(2_500),
            mpichgq_sim::SimDelta::from_micros(17_500),
        ));
        for _ in 0..3 {
            net.send_ip(udp(h1, h2, 972));
        }
        net.run_to_quiescence(&mut h);
        let st = net.fault_stats().unwrap();
        // Packet 1 was transmitting on r->h2 when the cut hit (Deliver at
        // 4 ms): lost in flight. Packets 2 and 3 waited in the queue and
        // arrived after the link came back.
        assert_eq!(st.drops_link_down, 1, "{st:?}");
        assert_eq!(h.got.len(), 2);
        assert!(h.got[0].0 >= SimTime::from_millis(20));
        assert_eq!(st.link_downs, 1);
        assert_eq!(st.link_ups, 1);
    }

    #[test]
    fn loss_burst_drops_some_corruption_accounted_separately() {
        let run = |seed: u64| {
            let (mut net, h1, h2) = line_topology();
            let mut h = Collect::new();
            let chan = net.route(NodeId(1), h2).unwrap();
            net.install_fault_plan(
                FaultPlan::new(seed)
                    .at(
                        SimTime::ZERO,
                        FaultAction::LossBurst {
                            chan,
                            per_mille: 400,
                            duration: mpichgq_sim::SimDelta::from_secs(1),
                        },
                    )
                    .at(
                        SimTime::from_secs(2),
                        FaultAction::CorruptBurst {
                            chan,
                            per_mille: 1000,
                            duration: mpichgq_sim::SimDelta::from_secs(1),
                        },
                    ),
            );
            for _ in 0..50 {
                net.send_ip(udp(h1, h2, 972));
            }
            // One packet inside the corruption window.
            net.run_until(&mut h, SimTime::from_millis(2_400));
            net.send_ip(udp(h1, h2, 972));
            net.run_to_quiescence(&mut h);
            let st = net.fault_stats().unwrap();
            (h.got.len(), st)
        };
        let (delivered, st) = run(11);
        assert!(st.drops_loss > 5 && st.drops_loss < 45, "{st:?}");
        assert_eq!(st.drops_corrupt, 1);
        assert_eq!(delivered, 50 - st.drops_loss as usize);
        // Same seed, same plan: bit-identical outcome.
        assert_eq!(run(11), (delivered, st));
        // Different seed: same accounting structure, different draws are
        // permitted (no assertion on equality).
        let (_, st2) = run(12);
        assert_eq!(st2.drops_corrupt, 1);
    }

    #[test]
    fn cpu_throttle_fault_slows_and_restores_work() {
        struct CpuH {
            done_at: Option<SimTime>,
        }
        impl NetHandler for CpuH {
            fn deliver(&mut self, _n: &mut Net, _h: NodeId, _p: Packet) {}
            fn host_timer(&mut self, _n: &mut Net, _h: NodeId, _t: u64) {}
            fn cpu_done(&mut self, net: &mut Net, _host: NodeId, _proc: ProcId) {
                self.done_at = Some(net.now());
            }
            fn control(&mut self, _n: &mut Net, _t: u64) {}
        }
        let (mut net, h1, _h2) = line_topology();
        let pid = net.cpu_add_process(h1);
        // 2.5 cpu-s solo. Throttled to 50% over [1s, 3s): 1 cpu-s by t=1,
        // 1 more over the throttle window, and the last 0.5 cpu-s at full
        // speed after restore = done at 3.5 s.
        net.install_fault_plan(
            FaultPlan::new(1)
                .at(
                    SimTime::from_secs(1),
                    FaultAction::CpuThrottle {
                        host: h1,
                        per_mille: 500,
                        duration: None,
                    },
                )
                .at(
                    SimTime::from_secs(3),
                    FaultAction::CpuThrottle {
                        host: h1,
                        per_mille: 1000,
                        duration: None,
                    },
                ),
        );
        net.cpu_start_work(h1, pid, SimDelta::from_millis(2_500));
        let mut h = CpuH { done_at: None };
        net.run_to_quiescence(&mut h);
        assert_eq!(h.done_at, Some(SimTime::from_millis(3_500)));
    }

    #[test]
    fn windowed_cpu_throttle_restores_baseline_through_the_event_loop() {
        struct CpuH {
            done_at: Option<SimTime>,
        }
        impl NetHandler for CpuH {
            fn deliver(&mut self, _n: &mut Net, _h: NodeId, _p: Packet) {}
            fn host_timer(&mut self, _n: &mut Net, _h: NodeId, _t: u64) {}
            fn cpu_done(&mut self, net: &mut Net, _host: NodeId, _proc: ProcId) {
                self.done_at = Some(net.now());
            }
            fn control(&mut self, _n: &mut Net, _t: u64) {}
        }
        let (mut net, h1, _h2) = line_topology();
        let pid = net.cpu_add_process(h1);
        // Two overlapping windows: [1s,3s)@500 and [2s,4s)@250. Effective:
        // full until 1 s, 50% over [1,2), 25% over [2,3) (min of both), 25%
        // over [3,4), full after — the *baseline*, though the 500‰ window
        // was still notionally "older". 2.5 cpu-s of work: 1 by t=1, 0.5
        // over [1,2), 0.25 over [2,3), 0.25 over [3,4), and the last 0.5 at
        // full speed = done at 4.5 s.
        net.install_fault_plan(
            FaultPlan::new(1)
                .at(
                    SimTime::from_secs(1),
                    FaultAction::CpuThrottle {
                        host: h1,
                        per_mille: 500,
                        duration: Some(SimDelta::from_secs(2)),
                    },
                )
                .at(
                    SimTime::from_secs(2),
                    FaultAction::CpuThrottle {
                        host: h1,
                        per_mille: 250,
                        duration: Some(SimDelta::from_secs(2)),
                    },
                ),
        );
        net.cpu_start_work(h1, pid, SimDelta::from_millis(2_500));
        let mut h = CpuH { done_at: None };
        net.run_to_quiescence(&mut h);
        assert_eq!(h.done_at, Some(SimTime::from_millis(4_500)));
    }

    #[test]
    fn host_crash_silences_and_restart_revives_with_conservation() {
        let (mut net, h1, h2) = line_topology();
        let mut h = Collect::new();
        net.install_fault_plan(
            FaultPlan::new(5)
                .at(SimTime::from_millis(3), FaultAction::HostCrash { host: h1 })
                .at(
                    SimTime::from_millis(50),
                    FaultAction::HostRestart { host: h1 },
                ),
        );
        // Ten packets: at 1 ms serialization each, one is on the wire and
        // the rest are queued on h1's iface when the crash hits at t=3 ms.
        for _ in 0..10 {
            net.send_ip(udp(h1, h2, 972));
        }
        // A packet toward the dead host is dropped on arrival, not
        // delivered — and the sender's ledger still balances.
        net.set_host_timer(h2, SimTime::from_millis(10), 7);
        net.run_until(&mut h, SimTime::from_millis(10));
        net.send_ip(udp(h2, h1, 972));
        // While down, the dead host sources nothing.
        net.send_ip(udp(h1, h2, 972));
        net.run_until(&mut h, SimTime::from_millis(49));
        let st = net.fault_stats().unwrap();
        assert_eq!(st.host_crashes, 1);
        assert!(net.host_is_down(h1));
        // Deliveries stopped at the crash: 2 packets had fully left h1's
        // queue by t=3 ms (tx at 1 and 2 ms); in-flight ones died.
        assert!(h.got.len() < 10, "crash must cut the stream short");
        assert!(st.drops_host_down > 0, "{st:?}");
        assert_eq!(st.dead_deliveries, 0);
        // Conservation holds mid-outage.
        let audit = net.audit();
        assert!(audit.conserved(), "{audit:?}");
        // Restart: the host sources and sinks again.
        net.run_until(&mut h, SimTime::from_millis(60));
        assert!(!net.host_is_down(h1));
        let before = h.got.len();
        net.send_ip(udp(h1, h2, 972));
        net.send_ip(udp(h2, h1, 972));
        net.run_to_quiescence(&mut h);
        assert_eq!(h.got.len(), before + 2);
        let st = net.fault_stats().unwrap();
        assert_eq!(st.host_restarts, 1);
        assert_eq!(st.dead_deliveries, 0);
        let audit = net.audit();
        assert!(audit.conserved(), "{audit:?}");
        // The purge shows up on h1's egress interface row.
        let purged: u64 = audit.chans.iter().map(|c| c.purged).sum();
        assert!(purged > 0);
    }

    #[test]
    fn dead_host_timers_are_suppressed() {
        let (mut net, h1, _h2) = line_topology();
        let mut h = Collect::new();
        net.install_fault_plan(
            FaultPlan::new(1).at(SimTime::from_millis(1), FaultAction::HostCrash { host: h1 }),
        );
        net.set_host_timer(h1, SimTime::from_millis(5), 1);
        net.run_to_quiescence(&mut h);
        assert!(h.timers.is_empty(), "timer fired on a dead host");
    }

    #[test]
    fn lifecycle_spans_decompose_end_to_end_delay() {
        let (mut net, h1, h2) = line_topology();
        net.enable_packet_tracing();
        net.set_deadline_matching(
            FlowSpec::host_pair(h1, h2, crate::packet::Proto::Udp),
            SimDelta::from_millis(3), // 4 ms one-way delay: every packet misses
        );
        let mut h = Collect::new();
        net.send_ip(udp(h1, h2, 972));
        net.run_to_quiescence(&mut h);
        let t = net.packet_tracer().unwrap();
        // Two hops: queue+tx+wire each, plus one e2e span and one slo.miss.
        use crate::lifecycle::SpanKind;
        let spans = t.spans();
        let kind_count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
        assert_eq!(kind_count(SpanKind::Queue), 2);
        assert_eq!(kind_count(SpanKind::Tx), 2);
        assert_eq!(kind_count(SpanKind::Wire), 2);
        assert_eq!(kind_count(SpanKind::E2e), 1);
        assert_eq!(kind_count(SpanKind::SloMiss), 1);
        // Per-hop durations sum to the end-to-end delay (no queueing on an
        // idle path: 1 ms ser + 1 ms wire per hop = 4 ms total).
        let sum: u64 = spans
            .iter()
            .filter(|s| s.kind != SpanKind::E2e && s.kind != SpanKind::SloMiss)
            .map(|s| s.dur_ns)
            .sum();
        let e2e = spans
            .iter()
            .find(|s| s.kind == SpanKind::E2e)
            .unwrap()
            .dur_ns;
        assert_eq!(sum, e2e);
        assert_eq!(e2e, 4_000_000);
        let f = &t.flows()[0];
        assert_eq!(f.delivered, 1);
        assert_eq!(f.misses, 1);
        assert_eq!(f.delay.quantile(0.5), Some(3_932_160)); // bucket lower bound ≤ 4 ms
                                                            // Queue-wait histogram: both hops saw zero wait (BE class).
        assert_eq!(t.be_wait.count(), 2);
        assert_eq!(t.be_wait.max(), Some(0));
        // Snapshot surfaces the new sections.
        let json = net.metrics_json();
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"flow.n0p1-n2p2.udp.delay_ns\""));
        assert!(json.contains("\"slo\""));
        assert!(json.contains("\"total_misses\":1"));
        // Chrome export parses and carries the spans.
        let trace = net.chrome_trace_json();
        let doc = mpichgq_obs::parse(&trace).expect("chrome trace must parse");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(
            events.len() >= 8,
            "expected spans + metadata, got {}",
            events.len()
        );
    }

    #[test]
    fn tracing_disabled_leaves_behavior_and_snapshot_sections_empty() {
        let (mut net, h1, h2) = line_topology();
        let mut h = Collect::new();
        net.send_ip(udp(h1, h2, 972));
        net.run_to_quiescence(&mut h);
        assert!(!net.packet_tracing_enabled());
        let json = net.metrics_json();
        assert!(json.contains("\"histograms\":{}"));
        assert!(!json.contains("\"slo\""));
        let trace = net.chrome_trace_json();
        assert_eq!(trace, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut net, h1, h2) = line_topology();
            let mut h = Collect::new();
            for i in 0..20 {
                let mut p = udp(h1, h2, 100 + i * 10);
                p.id = 0;
                net.send_ip(p);
            }
            net.run_to_quiescence(&mut h);
            h.got
        };
        assert_eq!(run(), run());
    }
}
