//! # mpichgq-netsim — a packet network with Differentiated Services
//!
//! The substitute for the paper's GARNET testbed (Figure 4): hosts and
//! store-and-forward routers joined by bandwidth/delay/framing-modeled
//! links, with the full DiffServ edge tool-kit the paper's Cisco 7500 MQC
//! configuration used (§5.1):
//!
//! * a **packet classifier** on edge-ingress interfaces ([`classifier`]);
//! * **token-bucket** marking and policing of premium flows ([`tokenbucket`]);
//! * **pluggable queue disciplines** ([`queue`]): the paper's strict-
//!   priority EF queuing by default, plus WFQ/DRR schedulers and RED/WRED
//!   droppers with an Assured Forwarding class behind one
//!   [`QueueDiscipline`] trait;
//! * optional **end-system traffic shaping** ([`shaper`]) — the paper's
//!   proposed remedy for bursty MPI traffic (§5.4);
//! * a per-host **CPU model** (via `mpichgq-dsrt`) so CPU contention and
//!   reservations (Figures 8–9) live in the same event timeline;
//! * deterministic **fault injection** ([`faults`]) — scripted link
//!   outages, loss/corruption bursts, and CPU throttling, replayable
//!   bit-identically from a seed (the chaos experiments).
//!
//! Transport protocols (TCP/UDP state machines) and applications sit above
//! this crate behind the [`net::NetHandler`] trait.

pub mod classifier;
pub mod faults;
pub mod lifecycle;
pub mod link;
pub mod net;
pub mod packet;
pub mod queue;
pub mod shaper;
pub mod shard;
pub mod tokenbucket;
pub mod topology;

pub use classifier::{Classifier, FlowSpec, PolicingAction, Verdict};
pub use faults::{FaultAction, FaultPlan, FaultStats};
pub use lifecycle::{FlowRec, PacketTracer, Span, SpanKind};
pub use link::{Chan, ChanId, Framing, LinkCfg};
pub use net::{
    ChanAudit, DropStats, Net, NetAudit, NetHandler, Node, NodeKind, TimelineSource, TopoBuilder,
};
pub use packet::{AfPrec, Dscp, FlowKey, NodeId, Packet, Proto, TcpFlags, TcpHeader, L4};
pub use queue::{
    ClassCfg, DropperCfg, Enqueue, Queue, QueueCfg, QueueDiscipline, QueueStats, RedCfg, SchedCfg,
    SchedKind,
};
pub use shaper::{ShapeOutcome, Shaper, ShaperStats};
pub use shard::{run_partitioned, run_windowed, Partition, PartitionError};
pub use tokenbucket::{depth_for, DepthRule, TokenBucket};
pub use topology::{Dumbbell, Garnet, GarnetCfg};
