//! Router output queues: pluggable per-interface queue disciplines.
//!
//! "Priority Queuing is used on the egress port of edge routers ... Priority
//! queueing ensures that all packets associated with reservations are sent
//! before any other packets. When there are no packets in the priority
//! queue, other packets are allowed to use the entire available bandwidth."
//! (§5.1)
//!
//! The paper's 2000-era configuration — strict-priority EF over drop-tail
//! best-effort — remains the default ([`QueueCfg::priority_default`]), and is
//! bit-identical to the pre-trait implementation. On top of it this module
//! adds the composable discipline space from the DiffServ follow-on work:
//!
//! * **schedulers** ([`SchedKind`]): strict priority, weighted fair queuing
//!   (start-time/finish-tag virtual clock, SCFQ-style), and deficit round
//!   robin (per-class quantum = weight × 1500 B);
//! * **droppers** ([`DropperCfg`]): drop-tail, RED (EWMA of the class
//!   backlog against min/max thresholds), and WRED (one RED curve per AF
//!   drop precedence sharing the class's EWMA);
//! * a third traffic class, **Assured Forwarding** ([`Dscp::Af`]), carrying
//!   three drop precedences between EF and best-effort.
//!
//! Every discipline implements [`QueueDiscipline`]; [`Queue`] is the boxed
//! facade the network core holds per interface. RED's probabilistic drops
//! draw from a per-queue [`SimRng`] seeded from the topology seed and the
//! channel index ([`Queue::with_seed`]), so disciplines are shard-local
//! state and parallel runs stay bit-identical at any thread count.

use crate::packet::{Dscp, Packet};
use mpichgq_sim::SimRng;
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    Queued,
    /// Dropped because the target queue was full (tail drop).
    DroppedFull,
    /// Dropped early by RED/WRED before the queue filled. The network core
    /// folds these into the same loss ledger as tail drops (conservation is
    /// unchanged) but traces them with a distinct label.
    DroppedEarly,
}

/// Counters kept by every queue, split by traffic class.
///
/// `enq_*`/`drop_*` count successful enqueues and tail drops; `early_*`
/// count RED/WRED early drops (disjoint from `drop_*`). `early_af` is
/// further split by AF drop precedence.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    pub enq_be: u64,
    pub enq_ef: u64,
    pub enq_af: u64,
    pub drop_be: u64,
    pub drop_ef: u64,
    pub drop_af: u64,
    pub dequeued: u64,
    pub bytes_dequeued: u64,
    /// High-water marks of the per-class backlogs, in bytes. A drop-tail
    /// queue is single-class; its mark is reported as best-effort.
    pub hw_be_bytes: u64,
    pub hw_ef_bytes: u64,
    pub hw_af_bytes: u64,
    /// Strict-priority violations: a best-effort or AF packet was dequeued
    /// while an EF packet was waiting under a strict-priority scheduler.
    /// Structurally impossible with the current `pop` ordering — the
    /// counter exists so the qcheck invariant battery can convict any
    /// future regression of the EF-first guarantee. WFQ/DRR interleave
    /// classes by design and never count here.
    pub prio_inversions: u64,
    /// RED/WRED early drops by class (AF split by drop precedence).
    pub early_be: u64,
    pub early_ef: u64,
    pub early_af: [u64; 3],
    /// Scheduler self-audit violations: WFQ virtual time moved backwards
    /// or the DRR rotation guard overflowed. Structurally impossible by
    /// construction (see DESIGN.md §15); any nonzero value is a bug.
    pub sched_violations: u64,
}

impl QueueStats {
    /// Total early (RED/WRED) drops across classes and precedences.
    #[inline]
    pub fn early_total(&self) -> u64 {
        self.early_be + self.early_ef + self.early_af.iter().sum::<u64>()
    }
}

/// Class indices used by the generic scheduler: EF=0, AF=1, BE=2.
const EF: usize = 0;
const AF: usize = 1;
const BE: usize = 2;

#[inline]
fn class_of(dscp: Dscp) -> usize {
    match dscp {
        Dscp::Ef => EF,
        Dscp::Af(_) => AF,
        Dscp::BestEffort => BE,
    }
}

#[inline]
fn prec_of(dscp: Dscp) -> usize {
    match dscp {
        Dscp::Af(p) => p.index(),
        _ => 0,
    }
}

/// A byte-capacity-bounded FIFO.
#[derive(Debug)]
struct Fifo {
    q: VecDeque<Packet>,
    cap_bytes: u64,
    cur_bytes: u64,
}

impl Fifo {
    fn new(cap_bytes: u64) -> Self {
        Fifo {
            q: VecDeque::new(),
            cap_bytes,
            cur_bytes: 0,
        }
    }
    fn try_push(&mut self, pkt: Packet) -> Result<(), Packet> {
        let len = pkt.ip_len() as u64;
        if self.cur_bytes + len > self.cap_bytes {
            return Err(pkt);
        }
        self.cur_bytes += len;
        self.q.push_back(pkt);
        Ok(())
    }
    fn pop(&mut self) -> Option<Packet> {
        let p = self.q.pop_front()?;
        self.cur_bytes -= p.ip_len() as u64;
        Some(p)
    }
}

/// Random Early Detection parameters for one class (or one AF drop
/// precedence under WRED). All arithmetic is integer/fixed-point so drop
/// decisions are bit-identical across platforms.
///
/// The average queue depth is a packet-clocked EWMA of the class backlog in
/// bytes: `avg += (cur - avg) >> ewma_shift` in 16-bit fixed point, updated
/// on every enqueue attempt. Below `min_bytes` nothing is dropped; above
/// `max_bytes` everything is dropped; in between the drop probability ramps
/// linearly from 0 to `max_p_permille`/1000.
///
/// ```
/// use mpichgq_netsim::RedCfg;
/// let red = RedCfg::new(30_000, 90_000).max_p_permille(200).ewma_shift(9);
/// assert_eq!(red.min_bytes, 30_000);
/// assert_eq!(red.max_p_permille, 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedCfg {
    /// No early drops while the average backlog is below this.
    pub min_bytes: u64,
    /// Every arrival is dropped while the average backlog is at or above
    /// this.
    pub max_bytes: u64,
    /// Drop probability (in 1/1000) as the average reaches `max_bytes`.
    pub max_p_permille: u32,
    /// EWMA weight exponent: `w_q = 2^-ewma_shift` (RFC 2309 suggests 9).
    pub ewma_shift: u32,
}

impl RedCfg {
    /// A RED curve between `min_bytes` and `max_bytes` with the classic
    /// defaults: max drop probability 10%, EWMA weight 2⁻⁹.
    pub fn new(min_bytes: u64, max_bytes: u64) -> RedCfg {
        RedCfg {
            min_bytes,
            max_bytes,
            max_p_permille: 100,
            ewma_shift: 9,
        }
    }
    pub fn max_p_permille(mut self, p: u32) -> RedCfg {
        self.max_p_permille = p.min(1000);
        self
    }
    pub fn ewma_shift(mut self, shift: u32) -> RedCfg {
        self.ewma_shift = shift.min(16);
        self
    }
    /// A WRED ramp over the three AF drop precedences: low precedence keeps
    /// the full `[min, max]` band, higher precedences start dropping at
    /// 2/3 and 1/3 of `min_bytes` with 2× and 4× the drop probability —
    /// i.e. out-of-profile (remarked) packets go first under congestion.
    ///
    /// ```
    /// use mpichgq_netsim::RedCfg;
    /// let ramp = RedCfg::wred_ramp(30_000, 90_000);
    /// assert!(ramp[2].min_bytes < ramp[0].min_bytes);
    /// assert!(ramp[2].max_p_permille > ramp[0].max_p_permille);
    /// ```
    pub fn wred_ramp(min_bytes: u64, max_bytes: u64) -> [RedCfg; 3] {
        let base = RedCfg::new(min_bytes, max_bytes);
        [
            base,
            RedCfg::new(min_bytes * 2 / 3, max_bytes).max_p_permille(base.max_p_permille * 2),
            RedCfg::new(min_bytes / 3, max_bytes).max_p_permille(base.max_p_permille * 4),
        ]
    }
}

/// Drop policy applied to one class's queue before packets are admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropperCfg {
    /// Admit until the byte capacity is hit, then tail-drop.
    DropTail,
    /// One RED curve for every packet in the class.
    Red(RedCfg),
    /// One RED curve per AF drop precedence (index =
    /// [`AfPrec::index`](crate::packet::AfPrec::index));
    /// non-AF packets use entry 0. The EWMA parameters are taken from
    /// entry 0 so all precedences share one average over the single queue.
    Wred([RedCfg; 3]),
}

/// Per-class configuration: byte capacity, scheduling weight, and dropper.
///
/// ```
/// use mpichgq_netsim::{ClassCfg, RedCfg};
/// let af = ClassCfg::new(150_000)
///     .weight(3)
///     .wred(RedCfg::wred_ramp(30_000, 120_000));
/// assert_eq!(af.weight, 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ClassCfg {
    pub cap_bytes: u64,
    /// Relative service share under WFQ/DRR (ignored by strict priority).
    pub weight: u32,
    pub dropper: DropperCfg,
}

impl ClassCfg {
    pub fn new(cap_bytes: u64) -> ClassCfg {
        ClassCfg {
            cap_bytes,
            weight: 1,
            dropper: DropperCfg::DropTail,
        }
    }
    pub fn weight(mut self, w: u32) -> ClassCfg {
        self.weight = w.max(1);
        self
    }
    pub fn red(mut self, red: RedCfg) -> ClassCfg {
        self.dropper = DropperCfg::Red(red);
        self
    }
    pub fn wred(mut self, curves: [RedCfg; 3]) -> ClassCfg {
        self.dropper = DropperCfg::Wred(curves);
        self
    }
}

/// Which scheduler serves the three classes of a [`SchedCfg`] queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Strict priority: EF, then AF, then best-effort.
    Sp,
    /// Weighted fair queuing (SCFQ virtual-time approximation).
    Wfq,
    /// Deficit round robin with quantum = weight × 1500 bytes.
    Drr,
}

/// A three-class (EF/AF/BE) discipline: a scheduler over per-class queues,
/// each with its own capacity, weight, and dropper.
///
/// ```
/// use mpichgq_netsim::{ClassCfg, Queue, QueueCfg, RedCfg, SchedCfg};
/// let cfg = SchedCfg::wfq()
///     .ef(ClassCfg::new(500_000).weight(8))
///     .af(ClassCfg::new(150_000).weight(3).wred(RedCfg::wred_ramp(30_000, 120_000)))
///     .be(ClassCfg::new(150_000).weight(1).red(RedCfg::new(30_000, 120_000)));
/// let q = Queue::with_seed(QueueCfg::Sched(cfg), 42);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SchedCfg {
    pub kind: SchedKind,
    pub ef: ClassCfg,
    pub af: ClassCfg,
    pub be: ClassCfg,
}

impl SchedCfg {
    fn with_kind(kind: SchedKind) -> SchedCfg {
        SchedCfg {
            kind,
            ef: ClassCfg::new(1_000_000).weight(8),
            af: ClassCfg::new(150_000).weight(3),
            be: ClassCfg::new(150_000).weight(1),
        }
    }
    /// Strict priority over three classes (EF > AF > BE).
    pub fn sp() -> SchedCfg {
        SchedCfg::with_kind(SchedKind::Sp)
    }
    /// Weighted fair queuing with default weights 8/3/1.
    pub fn wfq() -> SchedCfg {
        SchedCfg::with_kind(SchedKind::Wfq)
    }
    /// Deficit round robin with default weights 8/3/1.
    pub fn drr() -> SchedCfg {
        SchedCfg::with_kind(SchedKind::Drr)
    }
    pub fn ef(mut self, c: ClassCfg) -> SchedCfg {
        self.ef = c;
        self
    }
    pub fn af(mut self, c: ClassCfg) -> SchedCfg {
        self.af = c;
        self
    }
    pub fn be(mut self, c: ClassCfg) -> SchedCfg {
        self.be = c;
        self
    }
}

/// Configuration for an interface queue.
// Built once per interface at topology construction and consumed by
// `Queue::with_seed`; the `Sched` variant's size is irrelevant there.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy)]
pub enum QueueCfg {
    /// Single class, drop-tail (plain router, no QoS).
    DropTail { cap_bytes: u64 },
    /// Strict-priority EF queue over a best-effort drop-tail queue (the
    /// paper's configuration). AF traffic, if any, gets its own queue
    /// sized like best-effort and is served between EF and BE.
    Priority {
        ef_cap_bytes: u64,
        be_cap_bytes: u64,
    },
    /// Fully parameterized three-class discipline (scheduler × droppers).
    Sched(SchedCfg),
}

impl QueueCfg {
    /// 100 full-size packets of best-effort buffering — a typical late-90s
    /// router default — and a deeper EF queue (EF load is admission-limited,
    /// so its queue is sized to absorb policed bursts, not to police).
    pub fn priority_default() -> QueueCfg {
        QueueCfg::Priority {
            ef_cap_bytes: 1_000_000,
            be_cap_bytes: 150_000,
        }
    }
    pub fn droptail_default() -> QueueCfg {
        QueueCfg::DropTail { cap_bytes: 150_000 }
    }
}

/// The pluggable per-interface discipline contract: classify-and-admit on
/// [`enqueue`], pick-and-serve on [`pop`], with backlog introspection for
/// the transmit loop and [`QueueStats`] for observability and the qcheck
/// invariant battery.
///
/// Implementations must be deterministic: any randomness (RED) draws from
/// state seeded at construction ([`Queue::with_seed`]), never from global
/// sources — that is what keeps N-thread sharded runs bit-identical.
///
/// [`enqueue`]: QueueDiscipline::enqueue
/// [`pop`]: QueueDiscipline::pop
pub trait QueueDiscipline: std::fmt::Debug + Send {
    /// Admit, early-drop, or tail-drop one packet.
    fn enqueue(&mut self, pkt: Packet) -> Enqueue;
    /// Dequeue the next packet to transmit according to the scheduler.
    fn pop(&mut self) -> Option<Packet>;
    /// True when no packet is queued in any class.
    fn is_empty(&self) -> bool;
    /// Packets currently queued (all classes).
    fn len(&self) -> u64;
    /// Bytes currently queued (all classes).
    fn backlog_bytes(&self) -> u64;
    /// Bytes currently queued per class, `[EF, AF, BE]`. Single-class
    /// disciplines report their whole backlog as best-effort (mirroring
    /// how [`QueueStats`] attributes their high-water marks).
    fn class_backlog_bytes(&self) -> [u64; 3] {
        [0, 0, self.backlog_bytes()]
    }
    /// Snapshot of the per-class counters.
    fn stats(&self) -> QueueStats;
}

/// Queue discipline on one outgoing interface (boxed so the discipline is
/// pluggable per [`QueueCfg`] without changing the network core).
#[derive(Debug)]
pub struct Queue(Box<dyn QueueDiscipline>);

impl Queue {
    /// Build the discipline described by `cfg` with RNG seed 0. Equivalent
    /// to [`Queue::with_seed`]`(cfg, 0)`; only RED/WRED consult the seed.
    pub fn new(cfg: QueueCfg) -> Self {
        Queue::with_seed(cfg, 0)
    }

    /// Build the discipline described by `cfg`, seeding the queue-local
    /// RNG used for probabilistic (RED/WRED) drop decisions. The topology
    /// builder derives the seed from the topology seed and the channel
    /// index, so a shard rebuilding its slice of the network reproduces
    /// the exact drop stream.
    pub fn with_seed(cfg: QueueCfg, seed: u64) -> Self {
        match cfg {
            QueueCfg::DropTail { cap_bytes } => Queue(Box::new(DropTailQueue::new(cap_bytes))),
            QueueCfg::Priority {
                ef_cap_bytes,
                be_cap_bytes,
            } => Queue(Box::new(SpQueue::new(ef_cap_bytes, be_cap_bytes))),
            QueueCfg::Sched(sched) => Queue(Box::new(SchedQueue::new(sched, seed))),
        }
    }

    #[inline]
    pub fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        self.0.enqueue(pkt)
    }

    /// Dequeue the next packet to transmit.
    #[inline]
    pub fn pop(&mut self) -> Option<Packet> {
        self.0.pop()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Packets currently queued (all classes).
    #[inline]
    pub fn len(&self) -> u64 {
        self.0.len()
    }

    /// Bytes currently queued (all classes).
    #[inline]
    pub fn backlog_bytes(&self) -> u64 {
        self.0.backlog_bytes()
    }

    /// Bytes currently queued per class, `[EF, AF, BE]`.
    #[inline]
    pub fn class_backlog_bytes(&self) -> [u64; 3] {
        self.0.class_backlog_bytes()
    }

    pub fn stats(&self) -> QueueStats {
        self.0.stats()
    }
}

#[inline]
fn note_enq(stats: &mut QueueStats, class: usize) {
    match class {
        EF => stats.enq_ef += 1,
        AF => stats.enq_af += 1,
        _ => stats.enq_be += 1,
    }
}

#[inline]
fn note_drop(stats: &mut QueueStats, class: usize) {
    match class {
        EF => stats.drop_ef += 1,
        AF => stats.drop_af += 1,
        _ => stats.drop_be += 1,
    }
}

#[inline]
fn note_early(stats: &mut QueueStats, class: usize, prec: usize) {
    match class {
        EF => stats.early_ef += 1,
        AF => stats.early_af[prec] += 1,
        _ => stats.early_be += 1,
    }
}

/// Single class, drop-tail: the plain (non-QoS) router interface.
#[derive(Debug)]
struct DropTailQueue {
    fifo: Fifo,
    stats: QueueStats,
}

impl DropTailQueue {
    fn new(cap_bytes: u64) -> Self {
        DropTailQueue {
            fifo: Fifo::new(cap_bytes),
            stats: QueueStats::default(),
        }
    }
}

impl QueueDiscipline for DropTailQueue {
    fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        let class = class_of(pkt.dscp);
        match self.fifo.try_push(pkt) {
            Ok(()) => {
                note_enq(&mut self.stats, class);
                // Single shared FIFO: the whole-queue high-water mark is
                // reported as best-effort regardless of the packet's class.
                self.stats.hw_be_bytes = self.stats.hw_be_bytes.max(self.fifo.cur_bytes);
                Enqueue::Queued
            }
            Err(_) => {
                note_drop(&mut self.stats, class);
                Enqueue::DroppedFull
            }
        }
    }

    fn pop(&mut self) -> Option<Packet> {
        let p = self.fifo.pop()?;
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += p.ip_len() as u64;
        Some(p)
    }

    fn is_empty(&self) -> bool {
        self.fifo.q.is_empty()
    }

    fn len(&self) -> u64 {
        self.fifo.q.len() as u64
    }

    fn backlog_bytes(&self) -> u64 {
        self.fifo.cur_bytes
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Strict-priority EF queue over a best-effort drop-tail queue — the
/// paper's §5.1 configuration, extended with a third queue for AF traffic
/// served between EF and best-effort. With no AF traffic offered, behavior
/// and counters are identical to the original two-queue implementation.
#[derive(Debug)]
struct SpQueue {
    ef: Fifo,
    af: Fifo,
    be: Fifo,
    stats: QueueStats,
}

impl SpQueue {
    fn new(ef_cap_bytes: u64, be_cap_bytes: u64) -> Self {
        SpQueue {
            ef: Fifo::new(ef_cap_bytes),
            // AF is admission-limited like EF but jitter-tolerant: size its
            // queue like best-effort.
            af: Fifo::new(be_cap_bytes),
            be: Fifo::new(be_cap_bytes),
            stats: QueueStats::default(),
        }
    }
}

impl QueueDiscipline for SpQueue {
    fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        let class = class_of(pkt.dscp);
        let target = match class {
            EF => &mut self.ef,
            AF => &mut self.af,
            _ => &mut self.be,
        };
        match target.try_push(pkt) {
            Ok(()) => {
                let cur = target.cur_bytes;
                note_enq(&mut self.stats, class);
                match class {
                    EF => self.stats.hw_ef_bytes = self.stats.hw_ef_bytes.max(cur),
                    AF => self.stats.hw_af_bytes = self.stats.hw_af_bytes.max(cur),
                    _ => self.stats.hw_be_bytes = self.stats.hw_be_bytes.max(cur),
                }
                Enqueue::Queued
            }
            Err(_) => {
                note_drop(&mut self.stats, class);
                Enqueue::DroppedFull
            }
        }
    }

    fn pop(&mut self) -> Option<Packet> {
        let p = self
            .ef
            .pop()
            .or_else(|| self.af.pop())
            .or_else(|| self.be.pop())?;
        if p.dscp != Dscp::Ef && !self.ef.q.is_empty() {
            self.stats.prio_inversions += 1;
        }
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += p.ip_len() as u64;
        Some(p)
    }

    fn is_empty(&self) -> bool {
        self.ef.q.is_empty() && self.af.q.is_empty() && self.be.q.is_empty()
    }

    fn len(&self) -> u64 {
        (self.ef.q.len() + self.af.q.len() + self.be.q.len()) as u64
    }

    fn backlog_bytes(&self) -> u64 {
        self.ef.cur_bytes + self.af.cur_bytes + self.be.cur_bytes
    }

    fn class_backlog_bytes(&self) -> [u64; 3] {
        [self.ef.cur_bytes, self.af.cur_bytes, self.be.cur_bytes]
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Fixed-point scale for WFQ virtual time (tags are `len × SCALE / weight`).
const WFQ_SCALE: u64 = 1 << 8;
/// DRR quantum per unit of weight: one full-size packet.
const DRR_QUANTUM_UNIT: u64 = 1_500;
/// DRR rotation guard: more visits than this for one dequeue means the
/// deficit bookkeeping broke (counted in [`QueueStats::sched_violations`]).
const DRR_GUARD: u32 = 64 * 3;

#[derive(Debug)]
struct ClassState {
    fifo: Fifo,
    cfg: ClassCfg,
    /// WFQ finish tag of each queued packet, parallel to `fifo.q`.
    tags: VecDeque<u64>,
    /// RED EWMA of the class backlog in bytes, 16-bit fixed point.
    avg_fp: u64,
    /// DRR state.
    quantum: u64,
    deficit: u64,
}

impl ClassState {
    fn new(cfg: ClassCfg) -> Self {
        ClassState {
            fifo: Fifo::new(cfg.cap_bytes),
            cfg,
            tags: VecDeque::new(),
            avg_fp: 0,
            quantum: cfg.weight as u64 * DRR_QUANTUM_UNIT,
            deficit: 0,
        }
    }

    /// Update the EWMA and decide whether RED/WRED early-drops this
    /// arrival. Consumes at most one RNG draw (only in the linear-ramp
    /// region), keeping the drop stream deterministic per queue.
    fn red_decide(&mut self, prec: usize, rng: &mut SimRng) -> bool {
        let (ewma_shift, red) = match self.cfg.dropper {
            DropperCfg::DropTail => return false,
            DropperCfg::Red(r) => (r.ewma_shift, r),
            DropperCfg::Wred(rs) => (rs[0].ewma_shift, rs[prec]),
        };
        let cur_fp = self.fifo.cur_bytes << 16;
        if cur_fp >= self.avg_fp {
            self.avg_fp += (cur_fp - self.avg_fp) >> ewma_shift;
        } else {
            self.avg_fp -= (self.avg_fp - cur_fp) >> ewma_shift;
        }
        let avg = self.avg_fp >> 16;
        if avg < red.min_bytes {
            return false;
        }
        if avg >= red.max_bytes {
            return true;
        }
        let span = red.max_bytes - red.min_bytes;
        let p = red.max_p_permille as u64 * (avg - red.min_bytes) / span;
        rng.range(0, 1000) < p
    }
}

/// The generic three-class engine: SP/WFQ/DRR over per-class FIFOs with
/// per-class drop-tail/RED/WRED admission.
#[derive(Debug)]
struct SchedQueue {
    classes: [ClassState; 3],
    kind: SchedKind,
    stats: QueueStats,
    rng: SimRng,
    /// WFQ virtual time: the finish tag of the last packet served.
    vtime: u64,
    /// WFQ per-class finish tag of the last enqueued packet.
    last_finish: [u64; 3],
    /// DRR round-robin pointer and whether the current class was already
    /// credited its quantum on this visit.
    current: usize,
    credited: bool,
}

impl SchedQueue {
    fn new(cfg: SchedCfg, seed: u64) -> Self {
        SchedQueue {
            classes: [
                ClassState::new(cfg.ef),
                ClassState::new(cfg.af),
                ClassState::new(cfg.be),
            ],
            kind: cfg.kind,
            stats: QueueStats::default(),
            rng: SimRng::new(seed),
            vtime: 0,
            last_finish: [0; 3],
            current: 0,
            credited: false,
        }
    }

    /// Strict priority: lowest nonempty class index.
    fn pick_sp(&mut self) -> Option<usize> {
        let c = (0..3).find(|&i| !self.classes[i].fifo.q.is_empty())?;
        if c != EF && !self.classes[EF].fifo.q.is_empty() {
            self.stats.prio_inversions += 1;
        }
        Some(c)
    }

    /// SCFQ: serve the minimum head finish tag (ties to the lower class
    /// index) and advance virtual time to it. Because arrivals are stamped
    /// `start = max(vtime, last_finish[class])`, every tag in the system
    /// is ≥ vtime; a smaller one is a bookkeeping bug and is counted.
    fn pick_wfq(&mut self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for c in 0..3 {
            if let Some(&tag) = self.classes[c].tags.front() {
                if best.is_none_or(|(bt, _)| tag < bt) {
                    best = Some((tag, c));
                }
            }
        }
        let (tag, c) = best?;
        if tag < self.vtime {
            self.stats.sched_violations += 1;
        }
        self.vtime = self.vtime.max(tag);
        self.classes[c].tags.pop_front();
        Some(c)
    }

    /// DRR: visit classes round-robin, crediting `quantum` once per fresh
    /// visit; serve the head while it fits in the deficit. The pointer
    /// stays on a class between pops until its head no longer fits.
    fn pick_drr(&mut self) -> Option<usize> {
        if (0..3).all(|i| self.classes[i].fifo.q.is_empty()) {
            return None;
        }
        let mut visits = 0u32;
        loop {
            if visits > DRR_GUARD {
                // Structurally unreachable (quantum ≥ one full-size packet
                // per round); convict the regression and degrade to a
                // linear scan rather than spinning.
                self.stats.sched_violations += 1;
                return (0..3).find(|&i| !self.classes[i].fifo.q.is_empty());
            }
            let c = self.current;
            if self.classes[c].fifo.q.is_empty() {
                self.classes[c].deficit = 0;
                self.advance();
                visits += 1;
                continue;
            }
            if !self.credited {
                let cs = &mut self.classes[c];
                cs.deficit = cs.deficit.saturating_add(cs.quantum);
                self.credited = true;
            }
            let head = self.classes[c].fifo.q.front().map(|p| p.ip_len() as u64)?;
            if head <= self.classes[c].deficit {
                self.classes[c].deficit -= head;
                return Some(c);
            }
            self.advance();
            visits += 1;
        }
    }

    fn advance(&mut self) {
        self.current = (self.current + 1) % 3;
        self.credited = false;
    }
}

impl QueueDiscipline for SchedQueue {
    fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        let class = class_of(pkt.dscp);
        let prec = prec_of(pkt.dscp);
        let len = pkt.ip_len() as u64;
        if self.classes[class].red_decide(prec, &mut self.rng) {
            note_early(&mut self.stats, class, prec);
            return Enqueue::DroppedEarly;
        }
        match self.classes[class].fifo.try_push(pkt) {
            Ok(()) => {
                if self.kind == SchedKind::Wfq {
                    let weight = self.classes[class].cfg.weight.max(1) as u64;
                    let start = self.vtime.max(self.last_finish[class]);
                    let finish = start + len * WFQ_SCALE / weight;
                    self.last_finish[class] = finish;
                    self.classes[class].tags.push_back(finish);
                }
                note_enq(&mut self.stats, class);
                let cur = self.classes[class].fifo.cur_bytes;
                match class {
                    EF => self.stats.hw_ef_bytes = self.stats.hw_ef_bytes.max(cur),
                    AF => self.stats.hw_af_bytes = self.stats.hw_af_bytes.max(cur),
                    _ => self.stats.hw_be_bytes = self.stats.hw_be_bytes.max(cur),
                }
                Enqueue::Queued
            }
            Err(_) => {
                note_drop(&mut self.stats, class);
                Enqueue::DroppedFull
            }
        }
    }

    fn pop(&mut self) -> Option<Packet> {
        let c = match self.kind {
            SchedKind::Sp => self.pick_sp(),
            SchedKind::Wfq => self.pick_wfq(),
            SchedKind::Drr => self.pick_drr(),
        }?;
        let p = self.classes[c].fifo.pop()?;
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += p.ip_len() as u64;
        Some(p)
    }

    fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.fifo.q.is_empty())
    }

    fn len(&self) -> u64 {
        self.classes.iter().map(|c| c.fifo.q.len() as u64).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.fifo.cur_bytes).sum()
    }

    fn class_backlog_bytes(&self) -> [u64; 3] {
        [
            self.classes[EF].fifo.cur_bytes,
            self.classes[AF].fifo.cur_bytes,
            self.classes[BE].fifo.cur_bytes,
        ]
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{AfPrec, NodeId, L4};
    use mpichgq_sim::SimTime;

    fn pkt(dscp: Dscp, payload: u32) -> Packet {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            dscp,
            l4: L4::Udp,
            payload_len: payload,
            id: 0,
            born: SimTime::ZERO,
        }
    }

    #[test]
    fn droptail_enforces_byte_capacity() {
        let mut q = Queue::new(QueueCfg::DropTail { cap_bytes: 3_000 });
        // Each packet: 28 + 972 = 1000 bytes.
        for _ in 0..3 {
            assert_eq!(q.enqueue(pkt(Dscp::BestEffort, 972)), Enqueue::Queued);
        }
        assert_eq!(q.enqueue(pkt(Dscp::BestEffort, 972)), Enqueue::DroppedFull);
        assert_eq!(q.stats().drop_be, 1);
        assert_eq!(q.backlog_bytes(), 3_000);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = Queue::new(QueueCfg::droptail_default());
        for i in 0..5 {
            let mut p = pkt(Dscp::BestEffort, 100);
            p.id = i;
            q.enqueue(p);
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().id, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn priority_serves_ef_first() {
        let mut q = Queue::new(QueueCfg::priority_default());
        let mut be = pkt(Dscp::BestEffort, 100);
        be.id = 1;
        let mut ef = pkt(Dscp::Ef, 100);
        ef.id = 2;
        q.enqueue(be);
        q.enqueue(ef);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn be_flood_does_not_displace_ef() {
        let mut q = Queue::new(QueueCfg::Priority {
            ef_cap_bytes: 10_000,
            be_cap_bytes: 2_000,
        });
        for _ in 0..10 {
            q.enqueue(pkt(Dscp::BestEffort, 972));
        }
        assert!(q.stats().drop_be > 0);
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::Queued);
        assert_eq!(q.stats().drop_ef, 0);
        assert_eq!(q.pop().unwrap().dscp, Dscp::Ef);
    }

    #[test]
    fn ef_queue_has_its_own_capacity() {
        let mut q = Queue::new(QueueCfg::Priority {
            ef_cap_bytes: 1_000,
            be_cap_bytes: 1_000,
        });
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::Queued);
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::DroppedFull);
        assert_eq!(q.stats().drop_ef, 1);
    }

    #[test]
    fn empty_priority_queue_lets_be_use_everything() {
        let mut q = Queue::new(QueueCfg::priority_default());
        q.enqueue(pkt(Dscp::BestEffort, 500));
        assert_eq!(q.pop().unwrap().dscp, Dscp::BestEffort);
    }

    #[test]
    fn sp_queue_serves_af_between_ef_and_be() {
        let mut q = Queue::new(QueueCfg::priority_default());
        q.enqueue(pkt(Dscp::BestEffort, 100));
        q.enqueue(pkt(Dscp::Af(AfPrec::Low), 100));
        q.enqueue(pkt(Dscp::Ef, 100));
        assert_eq!(q.pop().unwrap().dscp, Dscp::Ef);
        assert_eq!(q.pop().unwrap().dscp, Dscp::Af(AfPrec::Low));
        assert_eq!(q.pop().unwrap().dscp, Dscp::BestEffort);
        let st = q.stats();
        assert_eq!((st.enq_ef, st.enq_af, st.enq_be), (1, 1, 1));
        assert_eq!(st.prio_inversions, 0);
    }

    #[test]
    fn sched_sp_matches_legacy_priority_service_order() {
        let mut legacy = Queue::new(QueueCfg::priority_default());
        let mut sched = Queue::new(QueueCfg::Sched(SchedCfg::sp()));
        for i in 0..20u64 {
            let dscp = if i % 3 == 0 {
                Dscp::Ef
            } else {
                Dscp::BestEffort
            };
            let mut p = pkt(dscp, 500);
            p.id = i;
            legacy.enqueue(p.clone());
            sched.enqueue(p);
        }
        loop {
            let (a, b) = (legacy.pop(), sched.pop());
            assert_eq!(a.as_ref().map(|p| p.id), b.as_ref().map(|p| p.id));
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wfq_shares_service_by_weight() {
        // EF weight 3, BE weight 1, equal-size packets: over a busy period
        // EF should get ~3x the service.
        let cfg = SchedCfg::wfq()
            .ef(ClassCfg::new(1_000_000).weight(3))
            .be(ClassCfg::new(1_000_000).weight(1));
        let mut q = Queue::new(QueueCfg::Sched(cfg));
        for _ in 0..40 {
            q.enqueue(pkt(Dscp::Ef, 972));
            q.enqueue(pkt(Dscp::BestEffort, 972));
        }
        let mut ef_served = 0;
        for _ in 0..16 {
            if q.pop().unwrap().dscp == Dscp::Ef {
                ef_served += 1;
            }
        }
        assert_eq!(ef_served, 12, "weight-3 EF should take 3/4 of the slots");
        assert_eq!(q.stats().sched_violations, 0);
    }

    #[test]
    fn wfq_is_work_conserving() {
        let mut q = Queue::new(QueueCfg::Sched(SchedCfg::wfq()));
        q.enqueue(pkt(Dscp::BestEffort, 500));
        assert_eq!(q.pop().unwrap().dscp, Dscp::BestEffort);
        assert!(q.pop().is_none());
    }

    #[test]
    fn drr_interleaves_by_quantum() {
        // Equal weights, equal packet sizes: DRR alternates between the
        // backlogged classes one quantum (one packet) at a time.
        let cfg = SchedCfg::drr()
            .ef(ClassCfg::new(1_000_000).weight(1))
            .be(ClassCfg::new(1_000_000).weight(1));
        let mut q = Queue::new(QueueCfg::Sched(cfg));
        for _ in 0..10 {
            q.enqueue(pkt(Dscp::Ef, 1_472));
            q.enqueue(pkt(Dscp::BestEffort, 1_472));
        }
        let mut served = Vec::new();
        for _ in 0..6 {
            served.push(q.pop().unwrap().dscp);
        }
        let ef = served.iter().filter(|d| **d == Dscp::Ef).count();
        assert_eq!(ef, 3, "equal weights should split service evenly");
        assert_eq!(q.stats().sched_violations, 0);
    }

    #[test]
    fn red_drops_early_under_sustained_backlog() {
        let cfg = SchedCfg::sp().be(ClassCfg::new(1_000_000).red(
            RedCfg::new(2_000, 10_000)
                .max_p_permille(1000)
                .ewma_shift(2),
        ));
        let mut q = Queue::with_seed(QueueCfg::Sched(cfg), 7);
        let mut early = 0;
        for _ in 0..200 {
            if q.enqueue(pkt(Dscp::BestEffort, 972)) == Enqueue::DroppedEarly {
                early += 1;
            }
        }
        assert!(early > 0, "RED never early-dropped under heavy backlog");
        assert_eq!(q.stats().early_be, early);
        // Early drops are not tail drops.
        assert_eq!(q.stats().drop_be, 0);
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let cfg = SchedCfg::sp()
            .be(ClassCfg::new(1_000_000).red(RedCfg::new(2_000, 10_000).ewma_shift(2)));
        let run = |seed| {
            let mut q = Queue::with_seed(QueueCfg::Sched(cfg), seed);
            (0..300)
                .map(|_| q.enqueue(pkt(Dscp::BestEffort, 972)) == Enqueue::DroppedEarly)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed must give the same drop stream");
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn wred_drops_high_precedence_first() {
        let cfg = SchedCfg::sp().af(ClassCfg::new(1_000_000)
            .wred(RedCfg::wred_ramp(3_000, 50_000).map(|r| r.ewma_shift(1))));
        let mut q = Queue::with_seed(QueueCfg::Sched(cfg), 11);
        let mut early = [0u64; 3];
        for i in 0..600 {
            let prec = match i % 3 {
                0 => AfPrec::Low,
                1 => AfPrec::Medium,
                _ => AfPrec::High,
            };
            if q.enqueue(pkt(Dscp::Af(prec), 972)) == Enqueue::DroppedEarly {
                early[prec.index()] += 1;
            }
            if i % 2 == 0 {
                q.pop();
            }
        }
        assert_eq!(q.stats().early_af, early);
        assert!(
            early[2] > early[0],
            "high drop precedence should be dropped more: {early:?}"
        );
    }
}
