//! Router output queues: drop-tail FIFO and the strict-priority queue that
//! implements the Expedited Forwarding per-hop behavior.
//!
//! "Priority Queuing is used on the egress port of edge routers ... Priority
//! queueing ensures that all packets associated with reservations are sent
//! before any other packets. When there are no packets in the priority
//! queue, other packets are allowed to use the entire available bandwidth."
//! (§5.1)

use crate::packet::{Dscp, Packet};
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    Queued,
    /// Dropped because the target queue was full.
    DroppedFull,
}

/// Counters kept by every queue, split by traffic class.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    pub enq_be: u64,
    pub enq_ef: u64,
    pub drop_be: u64,
    pub drop_ef: u64,
    pub dequeued: u64,
    pub bytes_dequeued: u64,
    /// High-water marks of the per-class backlogs, in bytes. A drop-tail
    /// queue is single-class; its mark is reported as best-effort.
    pub hw_be_bytes: u64,
    pub hw_ef_bytes: u64,
    /// Strict-priority violations: a best-effort packet was dequeued while
    /// an EF packet was waiting. Structurally impossible with the current
    /// `pop` ordering — the counter exists so the qcheck invariant battery
    /// can convict any future regression of the EF-first guarantee.
    pub prio_inversions: u64,
}

/// A byte-capacity-bounded FIFO.
#[derive(Debug)]
struct Fifo {
    q: VecDeque<Packet>,
    cap_bytes: u64,
    cur_bytes: u64,
}

impl Fifo {
    fn new(cap_bytes: u64) -> Self {
        Fifo {
            q: VecDeque::new(),
            cap_bytes,
            cur_bytes: 0,
        }
    }
    fn try_push(&mut self, pkt: Packet) -> Result<(), Packet> {
        let len = pkt.ip_len() as u64;
        if self.cur_bytes + len > self.cap_bytes {
            return Err(pkt);
        }
        self.cur_bytes += len;
        self.q.push_back(pkt);
        Ok(())
    }
    fn pop(&mut self) -> Option<Packet> {
        let p = self.q.pop_front()?;
        self.cur_bytes -= p.ip_len() as u64;
        Some(p)
    }
}

/// Queue discipline on one outgoing interface.
#[derive(Debug)]
pub enum Queue {
    /// Single class, drop-tail (plain router, no QoS).
    DropTail { fifo: Fifo2, stats: QueueStats },
    /// Strict-priority EF queue over a best-effort drop-tail queue.
    Priority {
        ef: Fifo2,
        be: Fifo2,
        stats: QueueStats,
    },
}

// Public alias so struct fields stay private but the type is constructible here.
#[derive(Debug)]
pub struct Fifo2(Fifo);

/// Configuration for an interface queue.
#[derive(Debug, Clone, Copy)]
pub enum QueueCfg {
    DropTail {
        cap_bytes: u64,
    },
    Priority {
        ef_cap_bytes: u64,
        be_cap_bytes: u64,
    },
}

impl QueueCfg {
    /// 100 full-size packets of best-effort buffering — a typical late-90s
    /// router default — and a deeper EF queue (EF load is admission-limited,
    /// so its queue is sized to absorb policed bursts, not to police).
    pub fn priority_default() -> QueueCfg {
        QueueCfg::Priority {
            ef_cap_bytes: 1_000_000,
            be_cap_bytes: 150_000,
        }
    }
    pub fn droptail_default() -> QueueCfg {
        QueueCfg::DropTail { cap_bytes: 150_000 }
    }
}

impl Queue {
    pub fn new(cfg: QueueCfg) -> Self {
        match cfg {
            QueueCfg::DropTail { cap_bytes } => Queue::DropTail {
                fifo: Fifo2(Fifo::new(cap_bytes)),
                stats: QueueStats::default(),
            },
            QueueCfg::Priority {
                ef_cap_bytes,
                be_cap_bytes,
            } => Queue::Priority {
                ef: Fifo2(Fifo::new(ef_cap_bytes)),
                be: Fifo2(Fifo::new(be_cap_bytes)),
                stats: QueueStats::default(),
            },
        }
    }

    #[inline]
    pub fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        let is_ef = pkt.dscp == Dscp::Ef;
        match self {
            Queue::DropTail { fifo, stats } => match fifo.0.try_push(pkt) {
                Ok(()) => {
                    if is_ef {
                        stats.enq_ef += 1
                    } else {
                        stats.enq_be += 1
                    }
                    stats.hw_be_bytes = stats.hw_be_bytes.max(fifo.0.cur_bytes);
                    Enqueue::Queued
                }
                Err(_) => {
                    if is_ef {
                        stats.drop_ef += 1
                    } else {
                        stats.drop_be += 1
                    }
                    Enqueue::DroppedFull
                }
            },
            Queue::Priority { ef, be, stats } => {
                let target = if is_ef { &mut *ef } else { &mut *be };
                match target.0.try_push(pkt) {
                    Ok(()) => {
                        if is_ef {
                            stats.enq_ef += 1;
                            stats.hw_ef_bytes = stats.hw_ef_bytes.max(ef.0.cur_bytes);
                        } else {
                            stats.enq_be += 1;
                            stats.hw_be_bytes = stats.hw_be_bytes.max(be.0.cur_bytes);
                        }
                        Enqueue::Queued
                    }
                    Err(_) => {
                        if is_ef {
                            stats.drop_ef += 1
                        } else {
                            stats.drop_be += 1
                        }
                        Enqueue::DroppedFull
                    }
                }
            }
        }
    }

    /// Dequeue the next packet to transmit: EF strictly before best-effort.
    #[inline]
    pub fn pop(&mut self) -> Option<Packet> {
        let (pkt, stats) = match self {
            Queue::DropTail { fifo, stats } => (fifo.0.pop(), stats),
            Queue::Priority { ef, be, stats } => {
                let p = ef.0.pop().or_else(|| be.0.pop());
                if let Some(p) = &p {
                    if p.dscp != Dscp::Ef && !ef.0.q.is_empty() {
                        stats.prio_inversions += 1;
                    }
                }
                (p, stats)
            }
        };
        if let Some(p) = &pkt {
            stats.dequeued += 1;
            stats.bytes_dequeued += p.ip_len() as u64;
        }
        pkt
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        match self {
            Queue::DropTail { fifo, .. } => fifo.0.q.is_empty(),
            Queue::Priority { ef, be, .. } => ef.0.q.is_empty() && be.0.q.is_empty(),
        }
    }

    /// Packets currently queued (all classes).
    #[inline]
    pub fn len(&self) -> u64 {
        match self {
            Queue::DropTail { fifo, .. } => fifo.0.q.len() as u64,
            Queue::Priority { ef, be, .. } => (ef.0.q.len() + be.0.q.len()) as u64,
        }
    }

    /// Bytes currently queued (all classes).
    #[inline]
    pub fn backlog_bytes(&self) -> u64 {
        match self {
            Queue::DropTail { fifo, .. } => fifo.0.cur_bytes,
            Queue::Priority { ef, be, .. } => ef.0.cur_bytes + be.0.cur_bytes,
        }
    }

    pub fn stats(&self) -> QueueStats {
        match self {
            Queue::DropTail { stats, .. } | Queue::Priority { stats, .. } => *stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, L4};
    use mpichgq_sim::SimTime;

    fn pkt(dscp: Dscp, payload: u32) -> Packet {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            dscp,
            l4: L4::Udp,
            payload_len: payload,
            id: 0,
            born: SimTime::ZERO,
        }
    }

    #[test]
    fn droptail_enforces_byte_capacity() {
        let mut q = Queue::new(QueueCfg::DropTail { cap_bytes: 3_000 });
        // Each packet: 28 + 972 = 1000 bytes.
        for _ in 0..3 {
            assert_eq!(q.enqueue(pkt(Dscp::BestEffort, 972)), Enqueue::Queued);
        }
        assert_eq!(q.enqueue(pkt(Dscp::BestEffort, 972)), Enqueue::DroppedFull);
        assert_eq!(q.stats().drop_be, 1);
        assert_eq!(q.backlog_bytes(), 3_000);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = Queue::new(QueueCfg::droptail_default());
        for i in 0..5 {
            let mut p = pkt(Dscp::BestEffort, 100);
            p.id = i;
            q.enqueue(p);
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().id, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn priority_serves_ef_first() {
        let mut q = Queue::new(QueueCfg::priority_default());
        let mut be = pkt(Dscp::BestEffort, 100);
        be.id = 1;
        let mut ef = pkt(Dscp::Ef, 100);
        ef.id = 2;
        q.enqueue(be);
        q.enqueue(ef);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 1);
    }

    #[test]
    fn be_flood_does_not_displace_ef() {
        let mut q = Queue::new(QueueCfg::Priority {
            ef_cap_bytes: 10_000,
            be_cap_bytes: 2_000,
        });
        for _ in 0..10 {
            q.enqueue(pkt(Dscp::BestEffort, 972));
        }
        assert!(q.stats().drop_be > 0);
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::Queued);
        assert_eq!(q.stats().drop_ef, 0);
        assert_eq!(q.pop().unwrap().dscp, Dscp::Ef);
    }

    #[test]
    fn ef_queue_has_its_own_capacity() {
        let mut q = Queue::new(QueueCfg::Priority {
            ef_cap_bytes: 1_000,
            be_cap_bytes: 1_000,
        });
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::Queued);
        assert_eq!(q.enqueue(pkt(Dscp::Ef, 972)), Enqueue::DroppedFull);
        assert_eq!(q.stats().drop_ef, 1);
    }

    #[test]
    fn empty_priority_queue_lets_be_use_everything() {
        let mut q = Queue::new(QueueCfg::priority_default());
        q.enqueue(pkt(Dscp::BestEffort, 500));
        assert_eq!(q.pop().unwrap().dscp, Dscp::BestEffort);
    }
}
