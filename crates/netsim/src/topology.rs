//! Topology presets, including GARNET (the paper's Figure 4 testbed).

use crate::link::{Framing, LinkCfg};
use crate::net::{Net, TopoBuilder};
use crate::packet::NodeId;
use crate::queue::QueueCfg;
use mpichgq_sim::{SchedulerKind, SimDelta};

/// Configuration for the GARNET testbed model.
///
/// "Within GARNET, the routers are connected by OC3 ATM connections; across
/// wide area links, they are connected by VCs of varying capacity. End
/// system computers are connected to routers by either switched Fast
/// Ethernet or OC3 connections." (§5.1)
#[derive(Debug, Clone, Copy)]
pub struct GarnetCfg {
    /// Capacity of the router-to-router trunks (the contended resource).
    pub core_bandwidth_bps: u64,
    /// One-way propagation delay of each router-to-router trunk. GARNET is
    /// a laboratory testbed ("the delay is quite small, on the order of a
    /// millisecond or two", §4.3); raise this to model the wide-area
    /// extensions to remote sites.
    pub core_delay: SimDelta,
    /// Host attachment links.
    pub host_link: LinkCfg,
    /// Framing on the core trunks (ATM in the real testbed).
    pub core_framing: Framing,
    /// Queue configuration on core-trunk egress ports.
    pub core_queue: QueueCfg,
    pub seed: u64,
    /// Event-scheduler backend for the simulation engine.
    pub scheduler: SchedulerKind,
}

impl Default for GarnetCfg {
    fn default() -> Self {
        GarnetCfg {
            core_bandwidth_bps: 155_520_000, // OC3
            core_delay: SimDelta::from_millis(1),
            host_link: LinkCfg::oc3(SimDelta::from_micros(25)),
            core_framing: Framing::AtmAal5,
            core_queue: QueueCfg::priority_default(),
            seed: 0xC15C0,
            scheduler: SchedulerKind::default(),
        }
    }
}

/// The built GARNET network with named endpoints (paper Figure 4: premium
/// source/destination and competitive source/destination Ultras around a
/// chain of three Cisco 7507s).
pub struct Garnet {
    pub net: Net,
    pub premium_src: NodeId,
    pub premium_dst: NodeId,
    pub competitive_src: NodeId,
    pub competitive_dst: NodeId,
    pub routers: [NodeId; 3],
}

impl Garnet {
    pub fn build(cfg: GarnetCfg) -> Garnet {
        let mut b = TopoBuilder::new(cfg.seed);
        b.scheduler(cfg.scheduler);
        let premium_src = b.host("premium-src");
        let competitive_src = b.host("competitive-src");
        let r1 = b.router("cisco-7507-1");
        let r2 = b.router("cisco-7507-2");
        let r3 = b.router("cisco-7507-3");
        let premium_dst = b.host("premium-dst");
        let competitive_dst = b.host("competitive-dst");

        // Host attachments. Hosts get generous drop-tail egress queues (the
        // OS can buffer); router-to-host egress uses priority queuing too.
        let host_q = QueueCfg::DropTail {
            cap_bytes: 512 * 1024,
        };
        b.link_asym(
            premium_src,
            r1,
            cfg.host_link,
            host_q,
            cfg.host_link,
            cfg.core_queue,
        );
        b.link_asym(
            competitive_src,
            r1,
            cfg.host_link,
            host_q,
            cfg.host_link,
            cfg.core_queue,
        );
        b.link_asym(
            premium_dst,
            r3,
            cfg.host_link,
            host_q,
            cfg.host_link,
            cfg.core_queue,
        );
        b.link_asym(
            competitive_dst,
            r3,
            cfg.host_link,
            host_q,
            cfg.host_link,
            cfg.core_queue,
        );

        // Core trunks: the contended path.
        let core = LinkCfg {
            bandwidth_bps: cfg.core_bandwidth_bps,
            delay: cfg.core_delay,
            framing: cfg.core_framing,
        };
        b.link(r1, r2, core, cfg.core_queue);
        b.link(r2, r3, core, cfg.core_queue);

        Garnet {
            net: b.build(),
            premium_src,
            premium_dst,
            competitive_src,
            competitive_dst,
            routers: [r1, r2, r3],
        }
    }

    /// The edge router whose ingress classifies traffic from `host`.
    pub fn edge_router_of(&self, host: NodeId) -> NodeId {
        if host == self.premium_src || host == self.competitive_src {
            self.routers[0]
        } else {
            self.routers[2]
        }
    }
}

/// A minimal dumbbell for unit tests: `src — r1 — r2 — dst`.
pub struct Dumbbell {
    pub net: Net,
    pub src: NodeId,
    pub dst: NodeId,
    pub r1: NodeId,
    pub r2: NodeId,
}

impl Dumbbell {
    pub fn build(bottleneck_bps: u64, delay: SimDelta, seed: u64) -> Dumbbell {
        Self::build_with_scheduler(bottleneck_bps, delay, seed, SchedulerKind::default())
    }

    pub fn build_with_scheduler(
        bottleneck_bps: u64,
        delay: SimDelta,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> Dumbbell {
        let mut b = TopoBuilder::new(seed);
        b.scheduler(scheduler);
        let src = b.host("src");
        let r1 = b.router("r1");
        let r2 = b.router("r2");
        let dst = b.host("dst");
        let fast = LinkCfg {
            bandwidth_bps: bottleneck_bps * 10,
            delay: SimDelta::from_micros(10),
            framing: Framing::None,
        };
        let core = LinkCfg {
            bandwidth_bps: bottleneck_bps,
            delay,
            framing: Framing::None,
        };
        b.link(src, r1, fast, QueueCfg::priority_default());
        b.link(r1, r2, core, QueueCfg::priority_default());
        b.link(r2, dst, fast, QueueCfg::priority_default());
        Dumbbell {
            net: b.build(),
            src,
            dst,
            r1,
            r2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NodeKind;

    #[test]
    fn garnet_wires_up() {
        let g = Garnet::build(GarnetCfg::default());
        assert_eq!(g.net.node_count(), 7);
        assert_eq!(g.net.node(g.routers[1]).kind, NodeKind::Router);
        // All host pairs are mutually reachable.
        for a in [g.premium_src, g.competitive_src] {
            for b in [g.premium_dst, g.competitive_dst] {
                assert!(g.net.route(a, b).is_some(), "{a} cannot reach {b}");
                assert!(g.net.route(b, a).is_some(), "{b} cannot reach {a}");
            }
        }
        // Premium path crosses both trunks: delay = 25us + 1ms + 1ms + 25us.
        let d = g.net.path_delay(g.premium_src, g.premium_dst).unwrap();
        assert_eq!(d, SimDelta::from_micros(25 + 1000 + 1000 + 25));
    }

    #[test]
    fn edge_router_mapping() {
        let g = Garnet::build(GarnetCfg::default());
        assert_eq!(g.edge_router_of(g.premium_src), g.routers[0]);
        assert_eq!(g.edge_router_of(g.premium_dst), g.routers[2]);
    }

    #[test]
    fn dumbbell_wires_up() {
        let d = Dumbbell::build(10_000_000, SimDelta::from_millis(2), 7);
        assert!(d.net.route(d.src, d.dst).is_some());
        assert_eq!(
            d.net.path_delay(d.src, d.dst).unwrap(),
            SimDelta::from_micros(10 + 2000 + 10)
        );
    }
}
