//! Deterministic fault injection: scripted link failures, loss and
//! corruption bursts, CPU throttling, and whole-host crash/restart.
//!
//! The figures only ever exercise the happy path — links stay up and
//! reservations, once granted, stay granted. Real deployments of the
//! paper's architecture had to survive the opposite: GARA treats
//! rejection and renegotiation as first-class, and the DiffServ model
//! degrades premium traffic to best-effort when EF capacity disappears.
//! This module supplies the *causes*: a [`FaultPlan`] lists `(time,
//! action)` pairs that [`crate::Net::install_fault_plan`] schedules
//! through the simulation engine, so faults fire in event order exactly
//! like every other occurrence in the run.
//!
//! Determinism: the plan is data, the schedule rides the engine, and the
//! per-packet loss/corruption draws come from a *private* [`SimRng`]
//! seeded from [`FaultPlan::new`]'s seed. The fault layer never touches
//! `Net`'s own RNG, so installing a plan perturbs nothing outside the
//! faults it injects, and two runs of the same seeded plan are
//! bit-identical.

use crate::link::ChanId;
use crate::packet::NodeId;
use mpichgq_sim::{SimDelta, SimRng, SimTime};

/// One scripted fault, applied at a scheduled simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Cut a directed channel: in-flight packets are lost, queued packets
    /// wait, nothing new starts transmitting.
    LinkDown(ChanId),
    /// Restore a cut channel and resume draining its queue.
    LinkUp(ChanId),
    /// For `duration`, drop each packet delivered over `chan` with
    /// probability `per_mille`/1000 (a congestion-loss or microwave-fade
    /// window).
    LossBurst {
        chan: ChanId,
        per_mille: u16,
        duration: SimDelta,
    },
    /// For `duration`, corrupt each packet delivered over `chan` with
    /// probability `per_mille`/1000; the receiver's checksum rejects it,
    /// so the packet is dropped (and accounted separately from loss).
    CorruptBurst {
        chan: ChanId,
        per_mille: u16,
        duration: SimDelta,
    },
    /// Throttle `host`'s CPU to `per_mille`/1000 of its capacity
    /// (thermal/power capping of the DSRT host).
    ///
    /// With `duration: None` the throttle is a persistent baseline change
    /// (`per_mille = 1000` restores full speed). With `Some(d)` it is a
    /// *window*: for `d` the host runs at the minimum of every active
    /// window and the baseline, and when the last window expires the
    /// baseline — the original rate, not the rate some other window left
    /// behind — is restored. Windows may overlap freely.
    CpuThrottle {
        host: NodeId,
        per_mille: u16,
        duration: Option<SimDelta>,
    },
    /// Crash `host`: its applications die, its queued and in-flight
    /// packets are dropped (accounted as `faults.drops.host_down`), it
    /// stops sourcing traffic, and packets addressed to it are dropped on
    /// arrival until a `HostRestart`.
    HostCrash { host: NodeId },
    /// Restart a crashed host: it may source and sink traffic again, and
    /// restart hooks (e.g. an MPI job respawning the host's rank) run.
    HostRestart { host: NodeId },
}

/// A seeded, scripted fault schedule — built once, replayable forever.
///
/// ```
/// use mpichgq_netsim::{ChanId, FaultAction, FaultPlan};
/// use mpichgq_sim::SimTime;
/// let plan = FaultPlan::new(7)
///     .at(SimTime::from_secs(5), FaultAction::LinkDown(ChanId(8)))
///     .at(SimTime::from_secs(6), FaultAction::LinkUp(ChanId(8)));
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan whose loss/corruption draws derive from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            actions: Vec::new(),
        }
    }

    /// Append `action` at time `at` (builder style).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> FaultPlan {
        self.actions.push((at, action));
        self
    }

    /// Convenience: a down/up pair covering `[from, from + outage)`.
    pub fn link_outage(self, chan: ChanId, from: SimTime, outage: SimDelta) -> FaultPlan {
        self.at(from, FaultAction::LinkDown(chan))
            .at(from + outage, FaultAction::LinkUp(chan))
    }

    /// The seed for the fault layer's private RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scripted `(time, action)` pairs, in insertion order.
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan scripts no actions at all.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Drop accounting for the fault layer, by cause (mirrors
/// [`crate::DropStats`]; published as `faults.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// In-flight packets lost because their channel was down on arrival.
    pub drops_link_down: u64,
    /// Packets dropped by an active loss burst.
    pub drops_loss: u64,
    /// Packets rejected by the receiver's checksum during a corruption
    /// burst.
    pub drops_corrupt: u64,
    /// `LinkDown` actions applied.
    pub link_downs: u64,
    /// `LinkUp` actions applied.
    pub link_ups: u64,
    /// Packets dropped because an endpoint host was crashed: purged from
    /// the host's egress queues and shapers at crash time, sourced by a
    /// not-yet-silenced sender, or arriving at (or from) a dead host.
    pub drops_host_down: u64,
    /// `HostCrash` actions applied.
    pub host_crashes: u64,
    /// `HostRestart` actions applied.
    pub host_restarts: u64,
    /// Tripwire: packets that reached a dead host's delivery path despite
    /// the drop gates. Zero by construction; the qcheck
    /// `dead_host_delivery` invariant convicts any regression.
    pub dead_deliveries: u64,
}

/// Per-channel fault state. `*_until` of [`SimTime::ZERO`] means "window
/// inactive" (the clock can never move before zero).
#[derive(Debug, Clone, Copy)]
struct ChanFaults {
    down: bool,
    loss_per_mille: u16,
    loss_until: SimTime,
    corrupt_per_mille: u16,
    corrupt_until: SimTime,
}

impl ChanFaults {
    const CLEAR: ChanFaults = ChanFaults {
        down: false,
        loss_per_mille: 0,
        loss_until: SimTime::ZERO,
        corrupt_per_mille: 0,
        corrupt_until: SimTime::ZERO,
    };
}

/// What the fault layer decided about one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    Deliver,
    DropLinkDown,
    DropLoss,
    DropCorrupt,
    DropHostDown,
}

impl FaultVerdict {
    /// Trace-event label for the drop verdicts.
    pub(crate) fn trace_kind(self) -> &'static str {
        match self {
            FaultVerdict::Deliver => "fault.deliver",
            FaultVerdict::DropLinkDown => "fault.drop.link_down",
            FaultVerdict::DropLoss => "fault.drop.loss",
            FaultVerdict::DropCorrupt => "fault.drop.corrupt",
            FaultVerdict::DropHostDown => "fault.drop.host_down",
        }
    }
}

/// One active CPU-throttle window on a host.
#[derive(Debug, Clone, Copy)]
struct ThrottleWindow {
    per_mille: u16,
    until: SimTime,
}

/// Per-host fault state: liveness plus the CPU-throttle baseline and any
/// active throttle windows.
#[derive(Debug, Clone)]
struct HostFaults {
    down: bool,
    /// The persistent (`duration: None`) throttle rate; 1000 = full speed.
    base_per_mille: u16,
    windows: Vec<ThrottleWindow>,
}

impl HostFaults {
    fn clear() -> HostFaults {
        HostFaults {
            down: false,
            base_per_mille: 1000,
            windows: Vec::new(),
        }
    }
}

/// The runtime state behind an installed [`FaultPlan`]: per-channel fault
/// flags, the private RNG, and drop accounting. Owned by `Net`; absent
/// (and costing one branch per event) until a plan is installed.
#[derive(Debug)]
pub(crate) struct FaultLayer {
    rng: SimRng,
    chans: Vec<ChanFaults>,
    hosts: Vec<HostFaults>,
    pub(crate) stats: FaultStats,
}

impl FaultLayer {
    pub(crate) fn new(seed: u64, n_chans: usize, n_nodes: usize) -> FaultLayer {
        FaultLayer {
            rng: SimRng::new(seed ^ 0x000F_A017_5EED),
            chans: vec![ChanFaults::CLEAR; n_chans],
            hosts: vec![HostFaults::clear(); n_nodes],
            stats: FaultStats::default(),
        }
    }

    #[inline]
    pub(crate) fn is_down(&self, chan: ChanId) -> bool {
        self.chans[chan.0 as usize].down
    }

    /// Whether `node` is currently crashed.
    #[inline]
    pub(crate) fn host_is_down(&self, node: NodeId) -> bool {
        self.hosts[node.0 as usize].down
    }

    /// Flip `node`'s liveness; counts the transition and reports whether
    /// the state actually changed (a double crash or double restart is a
    /// no-op so fuzzed plans cannot skew the accounting).
    pub(crate) fn set_host_down(&mut self, node: NodeId, down: bool) -> bool {
        let h = &mut self.hosts[node.0 as usize];
        if h.down == down {
            return false;
        }
        h.down = down;
        if down {
            self.stats.host_crashes += 1;
        } else {
            self.stats.host_restarts += 1;
        }
        true
    }

    /// Account one packet dropped because a host at either end was dead.
    #[inline]
    pub(crate) fn note_host_down_drop(&mut self) {
        self.stats.drops_host_down += 1;
    }

    /// Install a throttle on `node`: a baseline change (`until: None`) or
    /// a window that expires at `until`.
    pub(crate) fn set_throttle(&mut self, node: NodeId, per_mille: u16, until: Option<SimTime>) {
        let h = &mut self.hosts[node.0 as usize];
        let pm = per_mille.clamp(1, 1000);
        match until {
            None => h.base_per_mille = pm,
            Some(until) => h.windows.push(ThrottleWindow {
                per_mille: pm,
                until,
            }),
        }
    }

    /// The rate `node` should run at *right now*: the minimum of the
    /// baseline and every still-active window. Expired windows are pruned
    /// here, so when the last one lapses the answer is the baseline — the
    /// original rate — regardless of how the windows overlapped.
    pub(crate) fn effective_throttle(&mut self, node: NodeId, now: SimTime) -> u16 {
        let h = &mut self.hosts[node.0 as usize];
        h.windows.retain(|w| now < w.until);
        h.windows
            .iter()
            .map(|w| w.per_mille)
            .min()
            .map_or(h.base_per_mille, |w| w.min(h.base_per_mille))
    }

    pub(crate) fn set_down(&mut self, chan: ChanId, down: bool) {
        self.chans[chan.0 as usize].down = down;
        if down {
            self.stats.link_downs += 1;
        } else {
            self.stats.link_ups += 1;
        }
    }

    pub(crate) fn set_loss(&mut self, chan: ChanId, per_mille: u16, until: SimTime) {
        let c = &mut self.chans[chan.0 as usize];
        c.loss_per_mille = per_mille.min(1000);
        c.loss_until = until;
    }

    pub(crate) fn set_corrupt(&mut self, chan: ChanId, per_mille: u16, until: SimTime) {
        let c = &mut self.chans[chan.0 as usize];
        c.corrupt_per_mille = per_mille.min(1000);
        c.corrupt_until = until;
    }

    /// Decide the fate of a packet arriving over `chan` at `now`, drawing
    /// from the private RNG only while a probabilistic window is active
    /// (so idle channels consume no randomness). Updates [`FaultStats`].
    pub(crate) fn deliver_verdict(&mut self, now: SimTime, chan: ChanId) -> FaultVerdict {
        let c = self.chans[chan.0 as usize];
        if c.down {
            self.stats.drops_link_down += 1;
            return FaultVerdict::DropLinkDown;
        }
        if now < c.loss_until && self.rng.below(1000) < c.loss_per_mille as u64 {
            self.stats.drops_loss += 1;
            return FaultVerdict::DropLoss;
        }
        if now < c.corrupt_until && self.rng.below(1000) < c.corrupt_per_mille as u64 {
            self.stats.drops_corrupt += 1;
            return FaultVerdict::DropCorrupt;
        }
        FaultVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates_in_order() {
        let c = ChanId(3);
        let plan = FaultPlan::new(1)
            .link_outage(c, SimTime::from_secs(2), SimDelta::from_millis(500))
            .at(
                SimTime::from_secs(4),
                FaultAction::CpuThrottle {
                    host: NodeId(0),
                    per_mille: 300,
                    duration: None,
                },
            );
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.actions()[0],
            (SimTime::from_secs(2), FaultAction::LinkDown(c))
        );
        assert_eq!(
            plan.actions()[1],
            (
                SimTime::from_secs(2) + SimDelta::from_millis(500),
                FaultAction::LinkUp(c)
            )
        );
    }

    #[test]
    fn down_channel_drops_everything() {
        let mut layer = FaultLayer::new(9, 2, 0);
        layer.set_down(ChanId(1), true);
        for _ in 0..10 {
            assert_eq!(
                layer.deliver_verdict(SimTime::from_secs(1), ChanId(1)),
                FaultVerdict::DropLinkDown
            );
        }
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(1), ChanId(0)),
            FaultVerdict::Deliver
        );
        layer.set_down(ChanId(1), false);
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(1), ChanId(1)),
            FaultVerdict::Deliver
        );
        assert_eq!(layer.stats.drops_link_down, 10);
        assert_eq!(layer.stats.link_downs, 1);
        assert_eq!(layer.stats.link_ups, 1);
    }

    #[test]
    fn loss_window_expires_and_draws_deterministically() {
        let run = || {
            let mut layer = FaultLayer::new(42, 1, 0);
            layer.set_loss(ChanId(0), 500, SimTime::from_secs(10));
            let mut verdicts = Vec::new();
            for i in 0..200u64 {
                verdicts.push(layer.deliver_verdict(SimTime::from_millis(i), ChanId(0)));
            }
            (verdicts, layer.stats)
        };
        let (va, sa) = run();
        let (vb, sb) = run();
        assert_eq!(va, vb, "same seed must replay the same drop pattern");
        assert_eq!(sa, sb);
        // ~50% loss: both outcomes must occur in 200 draws.
        assert!(sa.drops_loss > 50 && sa.drops_loss < 150, "{sa:?}");
        // Outside the window the channel is clean and draws nothing.
        let mut layer = FaultLayer::new(42, 1, 0);
        layer.set_loss(ChanId(0), 1000, SimTime::from_secs(1));
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(2), ChanId(0)),
            FaultVerdict::Deliver
        );
        assert_eq!(layer.stats.drops_loss, 0);
    }

    #[test]
    fn corruption_is_accounted_separately() {
        let mut layer = FaultLayer::new(3, 1, 0);
        layer.set_corrupt(ChanId(0), 1000, SimTime::from_secs(1));
        assert_eq!(
            layer.deliver_verdict(SimTime::ZERO, ChanId(0)),
            FaultVerdict::DropCorrupt
        );
        assert_eq!(layer.stats.drops_corrupt, 1);
        assert_eq!(layer.stats.drops_loss, 0);
    }

    #[test]
    fn host_crash_and_restart_bookkeeping() {
        let mut layer = FaultLayer::new(1, 0, 3);
        assert!(!layer.host_is_down(NodeId(2)));
        assert!(layer.set_host_down(NodeId(2), true));
        assert!(layer.host_is_down(NodeId(2)));
        // Double crash is a no-op, not a second counted transition.
        assert!(!layer.set_host_down(NodeId(2), true));
        assert!(layer.set_host_down(NodeId(2), false));
        assert!(!layer.set_host_down(NodeId(2), false));
        assert_eq!(layer.stats.host_crashes, 1);
        assert_eq!(layer.stats.host_restarts, 1);
        layer.note_host_down_drop();
        assert_eq!(layer.stats.drops_host_down, 1);
    }

    /// The satellite regression: three overlapping throttle windows must
    /// compose as a running minimum and, once all have lapsed, restore
    /// the *original* baseline — not the rate the previous window held.
    /// (The naive save-and-restore implementation would leave the host at
    /// 500‰ after t=12 here.)
    #[test]
    fn overlapping_throttle_windows_restore_the_original_rate() {
        let t = |s: u64| SimTime::from_secs(s);
        let h = NodeId(0);
        let mut layer = FaultLayer::new(1, 0, 1);
        // Windows: [0,10)@500, [2,6)@300, [4,12)@700.
        layer.set_throttle(h, 500, Some(t(10)));
        assert_eq!(layer.effective_throttle(h, t(0)), 500);
        layer.set_throttle(h, 300, Some(t(6)));
        assert_eq!(layer.effective_throttle(h, t(2)), 300);
        layer.set_throttle(h, 700, Some(t(12)));
        assert_eq!(layer.effective_throttle(h, t(4)), 300);
        // Middle window expires: back to min(500, 700), not 300's prior.
        assert_eq!(layer.effective_throttle(h, t(6)), 500);
        assert_eq!(layer.effective_throttle(h, t(10)), 700);
        // All windows gone: the original full rate, not 500 or 700.
        assert_eq!(layer.effective_throttle(h, t(12)), 1000);
        // A persistent baseline composes with windows the same way.
        layer.set_throttle(h, 800, None);
        layer.set_throttle(h, 400, Some(t(20)));
        assert_eq!(layer.effective_throttle(h, t(13)), 400);
        assert_eq!(layer.effective_throttle(h, t(20)), 800);
    }
}
