//! Deterministic fault injection: scripted link failures, loss and
//! corruption bursts, and CPU throttling.
//!
//! The figures only ever exercise the happy path — links stay up and
//! reservations, once granted, stay granted. Real deployments of the
//! paper's architecture had to survive the opposite: GARA treats
//! rejection and renegotiation as first-class, and the DiffServ model
//! degrades premium traffic to best-effort when EF capacity disappears.
//! This module supplies the *causes*: a [`FaultPlan`] lists `(time,
//! action)` pairs that [`crate::Net::install_fault_plan`] schedules
//! through the simulation engine, so faults fire in event order exactly
//! like every other occurrence in the run.
//!
//! Determinism: the plan is data, the schedule rides the engine, and the
//! per-packet loss/corruption draws come from a *private* [`SimRng`]
//! seeded from [`FaultPlan::new`]'s seed. The fault layer never touches
//! `Net`'s own RNG, so installing a plan perturbs nothing outside the
//! faults it injects, and two runs of the same seeded plan are
//! bit-identical.

use crate::link::ChanId;
use crate::packet::NodeId;
use mpichgq_sim::{SimDelta, SimRng, SimTime};

/// One scripted fault, applied at a scheduled simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Cut a directed channel: in-flight packets are lost, queued packets
    /// wait, nothing new starts transmitting.
    LinkDown(ChanId),
    /// Restore a cut channel and resume draining its queue.
    LinkUp(ChanId),
    /// For `duration`, drop each packet delivered over `chan` with
    /// probability `per_mille`/1000 (a congestion-loss or microwave-fade
    /// window).
    LossBurst {
        chan: ChanId,
        per_mille: u16,
        duration: SimDelta,
    },
    /// For `duration`, corrupt each packet delivered over `chan` with
    /// probability `per_mille`/1000; the receiver's checksum rejects it,
    /// so the packet is dropped (and accounted separately from loss).
    CorruptBurst {
        chan: ChanId,
        per_mille: u16,
        duration: SimDelta,
    },
    /// Throttle `host`'s CPU to `per_mille`/1000 of its capacity
    /// (thermal/power capping of the DSRT host). `per_mille = 1000`
    /// restores full speed.
    CpuThrottle { host: NodeId, per_mille: u16 },
}

/// A seeded, scripted fault schedule — built once, replayable forever.
///
/// ```
/// use mpichgq_netsim::{ChanId, FaultAction, FaultPlan};
/// use mpichgq_sim::SimTime;
/// let plan = FaultPlan::new(7)
///     .at(SimTime::from_secs(5), FaultAction::LinkDown(ChanId(8)))
///     .at(SimTime::from_secs(6), FaultAction::LinkUp(ChanId(8)));
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan whose loss/corruption draws derive from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            actions: Vec::new(),
        }
    }

    /// Append `action` at time `at` (builder style).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> FaultPlan {
        self.actions.push((at, action));
        self
    }

    /// Convenience: a down/up pair covering `[from, from + outage)`.
    pub fn link_outage(self, chan: ChanId, from: SimTime, outage: SimDelta) -> FaultPlan {
        self.at(from, FaultAction::LinkDown(chan))
            .at(from + outage, FaultAction::LinkUp(chan))
    }

    /// The seed for the fault layer's private RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scripted `(time, action)` pairs, in insertion order.
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan scripts no actions at all.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Drop accounting for the fault layer, by cause (mirrors
/// [`crate::DropStats`]; published as `faults.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// In-flight packets lost because their channel was down on arrival.
    pub drops_link_down: u64,
    /// Packets dropped by an active loss burst.
    pub drops_loss: u64,
    /// Packets rejected by the receiver's checksum during a corruption
    /// burst.
    pub drops_corrupt: u64,
    /// `LinkDown` actions applied.
    pub link_downs: u64,
    /// `LinkUp` actions applied.
    pub link_ups: u64,
}

/// Per-channel fault state. `*_until` of [`SimTime::ZERO`] means "window
/// inactive" (the clock can never move before zero).
#[derive(Debug, Clone, Copy)]
struct ChanFaults {
    down: bool,
    loss_per_mille: u16,
    loss_until: SimTime,
    corrupt_per_mille: u16,
    corrupt_until: SimTime,
}

impl ChanFaults {
    const CLEAR: ChanFaults = ChanFaults {
        down: false,
        loss_per_mille: 0,
        loss_until: SimTime::ZERO,
        corrupt_per_mille: 0,
        corrupt_until: SimTime::ZERO,
    };
}

/// What the fault layer decided about one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    Deliver,
    DropLinkDown,
    DropLoss,
    DropCorrupt,
}

impl FaultVerdict {
    /// Trace-event label for the drop verdicts.
    pub(crate) fn trace_kind(self) -> &'static str {
        match self {
            FaultVerdict::Deliver => "fault.deliver",
            FaultVerdict::DropLinkDown => "fault.drop.link_down",
            FaultVerdict::DropLoss => "fault.drop.loss",
            FaultVerdict::DropCorrupt => "fault.drop.corrupt",
        }
    }
}

/// The runtime state behind an installed [`FaultPlan`]: per-channel fault
/// flags, the private RNG, and drop accounting. Owned by `Net`; absent
/// (and costing one branch per event) until a plan is installed.
#[derive(Debug)]
pub(crate) struct FaultLayer {
    rng: SimRng,
    chans: Vec<ChanFaults>,
    pub(crate) stats: FaultStats,
}

impl FaultLayer {
    pub(crate) fn new(seed: u64, n_chans: usize) -> FaultLayer {
        FaultLayer {
            rng: SimRng::new(seed ^ 0x000F_A017_5EED),
            chans: vec![ChanFaults::CLEAR; n_chans],
            stats: FaultStats::default(),
        }
    }

    #[inline]
    pub(crate) fn is_down(&self, chan: ChanId) -> bool {
        self.chans[chan.0 as usize].down
    }

    pub(crate) fn set_down(&mut self, chan: ChanId, down: bool) {
        self.chans[chan.0 as usize].down = down;
        if down {
            self.stats.link_downs += 1;
        } else {
            self.stats.link_ups += 1;
        }
    }

    pub(crate) fn set_loss(&mut self, chan: ChanId, per_mille: u16, until: SimTime) {
        let c = &mut self.chans[chan.0 as usize];
        c.loss_per_mille = per_mille.min(1000);
        c.loss_until = until;
    }

    pub(crate) fn set_corrupt(&mut self, chan: ChanId, per_mille: u16, until: SimTime) {
        let c = &mut self.chans[chan.0 as usize];
        c.corrupt_per_mille = per_mille.min(1000);
        c.corrupt_until = until;
    }

    /// Decide the fate of a packet arriving over `chan` at `now`, drawing
    /// from the private RNG only while a probabilistic window is active
    /// (so idle channels consume no randomness). Updates [`FaultStats`].
    pub(crate) fn deliver_verdict(&mut self, now: SimTime, chan: ChanId) -> FaultVerdict {
        let c = self.chans[chan.0 as usize];
        if c.down {
            self.stats.drops_link_down += 1;
            return FaultVerdict::DropLinkDown;
        }
        if now < c.loss_until && self.rng.below(1000) < c.loss_per_mille as u64 {
            self.stats.drops_loss += 1;
            return FaultVerdict::DropLoss;
        }
        if now < c.corrupt_until && self.rng.below(1000) < c.corrupt_per_mille as u64 {
            self.stats.drops_corrupt += 1;
            return FaultVerdict::DropCorrupt;
        }
        FaultVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates_in_order() {
        let c = ChanId(3);
        let plan = FaultPlan::new(1)
            .link_outage(c, SimTime::from_secs(2), SimDelta::from_millis(500))
            .at(
                SimTime::from_secs(4),
                FaultAction::CpuThrottle {
                    host: NodeId(0),
                    per_mille: 300,
                },
            );
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.actions()[0],
            (SimTime::from_secs(2), FaultAction::LinkDown(c))
        );
        assert_eq!(
            plan.actions()[1],
            (
                SimTime::from_secs(2) + SimDelta::from_millis(500),
                FaultAction::LinkUp(c)
            )
        );
    }

    #[test]
    fn down_channel_drops_everything() {
        let mut layer = FaultLayer::new(9, 2);
        layer.set_down(ChanId(1), true);
        for _ in 0..10 {
            assert_eq!(
                layer.deliver_verdict(SimTime::from_secs(1), ChanId(1)),
                FaultVerdict::DropLinkDown
            );
        }
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(1), ChanId(0)),
            FaultVerdict::Deliver
        );
        layer.set_down(ChanId(1), false);
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(1), ChanId(1)),
            FaultVerdict::Deliver
        );
        assert_eq!(layer.stats.drops_link_down, 10);
        assert_eq!(layer.stats.link_downs, 1);
        assert_eq!(layer.stats.link_ups, 1);
    }

    #[test]
    fn loss_window_expires_and_draws_deterministically() {
        let run = || {
            let mut layer = FaultLayer::new(42, 1);
            layer.set_loss(ChanId(0), 500, SimTime::from_secs(10));
            let mut verdicts = Vec::new();
            for i in 0..200u64 {
                verdicts.push(layer.deliver_verdict(SimTime::from_millis(i), ChanId(0)));
            }
            (verdicts, layer.stats)
        };
        let (va, sa) = run();
        let (vb, sb) = run();
        assert_eq!(va, vb, "same seed must replay the same drop pattern");
        assert_eq!(sa, sb);
        // ~50% loss: both outcomes must occur in 200 draws.
        assert!(sa.drops_loss > 50 && sa.drops_loss < 150, "{sa:?}");
        // Outside the window the channel is clean and draws nothing.
        let mut layer = FaultLayer::new(42, 1);
        layer.set_loss(ChanId(0), 1000, SimTime::from_secs(1));
        assert_eq!(
            layer.deliver_verdict(SimTime::from_secs(2), ChanId(0)),
            FaultVerdict::Deliver
        );
        assert_eq!(layer.stats.drops_loss, 0);
    }

    #[test]
    fn corruption_is_accounted_separately() {
        let mut layer = FaultLayer::new(3, 1);
        layer.set_corrupt(ChanId(0), 1000, SimTime::from_secs(1));
        assert_eq!(
            layer.deliver_verdict(SimTime::ZERO, ChanId(0)),
            FaultVerdict::DropCorrupt
        );
        assert_eq!(layer.stats.drops_corrupt, 1);
        assert_eq!(layer.stats.drops_loss, 0);
    }
}
