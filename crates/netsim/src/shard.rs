//! Conservative-lookahead parallel execution of a partitioned topology.
//!
//! A [`Partition`] splits a topology's nodes into `k` shards. Each shard
//! runs a complete [`Net`] copy but only ever schedules events for the
//! nodes it owns: a channel belongs to the shard of its `from` node (its
//! queue, busy flag, and `TxDone` events live there) and a delivery
//! executes in the shard of its `to` node. The single place where
//! simulated causality crosses a shard boundary — a transmission whose
//! channel lands on a foreign node — becomes a timestamped outbox message
//! instead of an engine event (see `Net::try_start_tx`).
//!
//! **Lookahead bound.** Let `L` be the minimum propagation delay over all
//! cross-shard channels. A packet transmitted at time `s` arrives at
//! `s + serialization + delay >= s + L`, so while a shard executes the
//! window `[T, T+L)` every message it can possibly emit arrives at or
//! after `T+L` — strictly in every other shard's future. Shards therefore
//! advance in lock-step windows of width `L` with a barrier between
//! windows, exchanging outboxes at the barrier. Zero-delay cross-shard
//! links would make `L = 0` and the window empty, so [`Partition`]
//! construction rejects them up front instead of deadlocking.
//!
//! **Deterministic merge rule.** At each barrier a shard drains the
//! messages addressed to it sorted by `(timestamp, source shard id,
//! source sequence number)`. The triple is unique per message and depends
//! only on simulated state, never on thread interleaving, so any thread
//! count — including one — produces bit-identical shard states. The
//! engine's own tie-break (insertion order at equal timestamps) is then
//! fed identically on every run.
//!
//! **Worker-local construction.** Handlers (TCP stacks, apps) are not
//! `Send` and never need to be: [`run_partitioned`] takes a *builder*
//! closure and each worker thread constructs, runs, and summarizes its
//! own shards entirely on one thread. Only the summaries (`R: Send`)
//! cross threads. By contract the builder spawns traffic only on hosts
//! the given shard owns; `Net` asserts ownership at the scheduling sites.

use crate::net::{Net, NetHandler, TopoBuilder};
use crate::packet::NodeId;
use mpichgq_sim::{SimDelta, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Why a shard map was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The map's length does not equal the topology's node count.
    WrongLength { nodes: usize, map: usize },
    /// Shard ids must be contiguous `0..k`; this id has no member.
    EmptyShard { shard: u32 },
    /// A cross-shard channel with zero propagation delay: the lookahead
    /// window would be empty and the engine could never advance.
    ZeroDelayCrossLink { from: usize, to: usize },
    /// The auto-partitioner needs a positive delay cut.
    ZeroCut,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PartitionError::WrongLength { nodes, map } => {
                write!(f, "shard map has {map} entries for {nodes} nodes")
            }
            PartitionError::EmptyShard { shard } => {
                write!(
                    f,
                    "shard ids are not contiguous: shard {shard} has no nodes"
                )
            }
            PartitionError::ZeroDelayCrossLink { from, to } => write!(
                f,
                "channel {from} -> {to} crosses shards with zero propagation \
                 delay; conservative lookahead would be zero and no window \
                 could advance — keep zero-delay links inside one shard"
            ),
            PartitionError::ZeroCut => {
                write!(f, "partition_by_delay needs a positive delay cut")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated node→shard map with its conservative lookahead bound.
#[derive(Debug, Clone)]
pub struct Partition {
    shard_of: Arc<[u32]>,
    shards: u32,
    /// Minimum propagation delay over cross-shard channels; `None` when no
    /// channel crosses shards (disconnected islands or a single shard).
    lookahead: Option<SimDelta>,
}

impl Partition {
    /// Validate an explicit node→shard map against the topology: the map
    /// must cover every node with contiguous shard ids, and every channel
    /// that crosses shards must have nonzero propagation delay (that
    /// minimum becomes the lookahead window).
    pub fn from_map(topo: &TopoBuilder, shard_of: Vec<u32>) -> Result<Partition, PartitionError> {
        let nodes = topo.node_count();
        if shard_of.len() != nodes {
            return Err(PartitionError::WrongLength {
                nodes,
                map: shard_of.len(),
            });
        }
        let shards = shard_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut seen = vec![false; shards as usize];
        for &s in &shard_of {
            seen[s as usize] = true;
        }
        if let Some(empty) = seen.iter().position(|&s| !s) {
            return Err(PartitionError::EmptyShard {
                shard: empty as u32,
            });
        }
        let mut lookahead: Option<SimDelta> = None;
        for (from, to, delay) in topo.chan_meta() {
            if shard_of[from] == shard_of[to] {
                continue;
            }
            if delay.is_zero() {
                return Err(PartitionError::ZeroDelayCrossLink { from, to });
            }
            lookahead = Some(lookahead.map_or(delay, |l| l.min(delay)));
        }
        Ok(Partition {
            shard_of: shard_of.into(),
            shards,
            lookahead,
        })
    }

    /// Auto-partition: nodes joined by any channel with propagation delay
    /// below `cut` are fused into one shard (union-find), so only links
    /// with delay `>= cut` — the WAN links of the paper's setting — cross
    /// shards. Shard ids are assigned in first-node order, making the
    /// partition a pure function of the topology.
    pub fn by_min_delay(topo: &TopoBuilder, cut: SimDelta) -> Result<Partition, PartitionError> {
        if cut.is_zero() {
            return Err(PartitionError::ZeroCut);
        }
        let n = topo.node_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (from, to, delay) in topo.chan_meta() {
            if delay < cut {
                let (a, b) = (root(&mut parent, from), root(&mut parent, to));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
        let mut ids = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut shard_of = Vec::with_capacity(n);
        for node in 0..n {
            let r = root(&mut parent, node);
            if ids[r] == u32::MAX {
                ids[r] = next;
                next += 1;
            }
            shard_of.push(ids[r]);
        }
        Partition::from_map(topo, shard_of)
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The conservative lookahead window, i.e. the minimum cross-shard
    /// propagation delay (`None` when nothing crosses shards).
    pub fn lookahead(&self) -> Option<SimDelta> {
        self.lookahead
    }

    /// Which shard owns `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of[node.0 as usize]
    }

    fn map(&self) -> Arc<[u32]> {
        Arc::clone(&self.shard_of)
    }
}

/// Bind a freshly built shard copy: install the ownership map and give
/// multi-shard worlds a per-shard RNG stream split off the topology seed.
/// Single-shard partitions keep the monolithic stream untouched, so the
/// degenerate case stays bit-identical to an unpartitioned run.
fn bind_shard(net: &mut Net, shard: u32, part: &Partition) {
    net.set_shard_ctx(shard, part.map());
    if part.shards > 1 {
        let forked = net.rng.fork_labeled(&format!("shard-{shard}"));
        net.rng = forked;
    }
}

/// Run a monolithic world through the parallel engine's window loop: pop
/// in lock-step windows of `window`, skipping idle stretches. With one
/// shard there is nothing to exchange, so this is bit-identical to
/// `net.run_until(h, limit)` — the degenerate case the unit tests pin —
/// while still exercising the exact window arithmetic the threaded path
/// uses. Experiments route through this when `MPICHGQ_THREADS > 1` so a
/// thread-count sweep genuinely executes the parallel engine's schedule.
pub fn run_windowed<H: NetHandler>(net: &mut Net, h: &mut H, window: SimDelta, limit: SimTime) {
    assert!(!window.is_zero(), "zero-width window cannot advance");
    let limit_ns = limit.as_nanos();
    let mut t_ns = net.now().as_nanos();
    loop {
        let end_ns = t_ns.saturating_add(window.as_nanos());
        if end_ns > limit_ns {
            net.run_until(h, limit);
            return;
        }
        // Half-open window [t, end): integer nanoseconds make `end - 1`
        // the exact inclusive bound.
        net.run_until(h, SimTime::from_nanos(end_ns - 1));
        let peek = net.peek_time().map_or(u64::MAX, |p| p.as_nanos());
        t_ns = end_ns.max(peek.min(limit_ns));
    }
}

/// Execute a partitioned world on `threads` OS threads until `limit`.
///
/// `build(shard)` constructs that shard's complete `Net` (the full
/// topology — routes need the whole graph) plus its handler, spawning
/// traffic **only on hosts the shard owns**. After the run, `finish`
/// reduces each shard to a `Send` summary on the worker that owns it;
/// summaries are returned in shard order. Neither `Net` nor the handler
/// ever crosses a thread.
///
/// Shard `i` is pinned to worker `i % threads` and workers process their
/// shards in ascending order; combined with the deterministic merge rule
/// this makes the result a pure function of `(build, limit)`, independent
/// of the thread count.
pub fn run_partitioned<H, R, B, F>(
    part: &Partition,
    threads: usize,
    limit: SimTime,
    build: B,
    finish: F,
) -> Vec<R>
where
    H: NetHandler,
    R: Send,
    B: Fn(u32) -> (Net, H) + Sync,
    F: Fn(u32, Net, H) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    let k = part.shards as usize;
    assert!(k >= 1, "partition has no shards");
    let threads = threads.min(k);
    // With no cross-shard channel there is no coupling: a single maximal
    // window runs every shard straight to the limit.
    let la_ns = part.lookahead.map_or(u64::MAX, |l| l.as_nanos());
    let limit_ns = limit.as_nanos();

    let inboxes: Vec<Mutex<Vec<crate::net::XMsg>>> =
        (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let peeks: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(threads);
    let results: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let (inboxes, peeks, barrier, results, build, finish) =
        (&inboxes, &peeks, &barrier, &results, &build, &finish);

    std::thread::scope(|s| {
        for w in 0..threads {
            s.spawn(move || {
                let mut mine: Vec<(usize, Net, H)> = (w..k)
                    .step_by(threads)
                    .map(|i| {
                        let (mut net, h) = build(i as u32);
                        bind_shard(&mut net, i as u32, part);
                        (i, net, h)
                    })
                    .collect();
                let mut t_ns = 0u64;
                // Whole idle windows the schedule jumped before the current
                // one (the idle-skip vote) — recorded per barrier via
                // `shard_window_mark` for the parallel-engine self-profile.
                let mut skipped = 0u64;
                loop {
                    let end_ns = t_ns.saturating_add(la_ns);
                    let final_win = end_ns > limit_ns;
                    let process_to = if final_win {
                        limit
                    } else {
                        SimTime::from_nanos(end_ns - 1)
                    };
                    for (_, net, h) in mine.iter_mut() {
                        net.run_until(h, process_to);
                    }
                    // Route this worker's outboxes. Inboxes are mutexed;
                    // push order across workers is arbitrary, which is why
                    // the drain below sorts by (at, src_shard, seq).
                    for (_, net, _) in mine.iter_mut() {
                        for m in net.take_outbox() {
                            let dest = part.shard_of(net.chan(m.chan).to) as usize;
                            inboxes[dest].lock().unwrap().push(m);
                        }
                    }
                    barrier.wait();
                    // All sends for this window are in. Drain own inboxes
                    // under the merge rule and publish the next pending
                    // event time for the idle-skip vote.
                    for (i, net, _) in mine.iter_mut() {
                        let mut msgs = std::mem::take(&mut *inboxes[*i].lock().unwrap());
                        msgs.sort_unstable_by_key(|m| (m.at, m.src_shard, m.seq));
                        let injected = msgs.len() as u64;
                        for m in msgs {
                            net.inject_cross(m);
                        }
                        net.shard_window_mark(process_to.as_nanos(), injected, skipped);
                        let peek = net.peek_time().map_or(u64::MAX, |p| p.as_nanos());
                        peeks[*i].store(peek, Ordering::SeqCst);
                    }
                    barrier.wait();
                    if final_win {
                        break;
                    }
                    // Every worker computes the same minimum from the same
                    // published peeks, so all take the same next window —
                    // no third barrier needed: peeks are rewritten only
                    // after the next window's barrier, which nobody can
                    // reach before everyone has read them.
                    let min_peek = peeks
                        .iter()
                        .map(|p| p.load(Ordering::SeqCst))
                        .min()
                        .expect("at least one shard");
                    t_ns = end_ns.max(min_peek.min(limit_ns));
                    skipped = (t_ns - end_ns) / la_ns;
                }
                for (i, net, h) in mine {
                    *results[i].lock().unwrap() = Some(finish(i as u32, net, h));
                }
            });
        }
    });

    results
        .iter()
        .map(|m| {
            m.lock()
                .unwrap()
                .take()
                .expect("a worker thread panicked before finishing its shards")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkCfg;
    use crate::packet::{NodeId, Packet, L4};
    use crate::queue::QueueCfg;

    /// Two islands (host–router each) joined by a WAN link; `sep` controls
    /// which side of the delay cut the WAN link falls on.
    fn two_island_topo(wan_delay: SimDelta) -> TopoBuilder {
        let mut t = TopoBuilder::new(7);
        let h0 = t.host("h0");
        let r0 = t.router("r0");
        let h1 = t.host("h1");
        let r1 = t.router("r1");
        let fast = LinkCfg::fast_ethernet(SimDelta::from_micros(10));
        let wan = LinkCfg::fast_ethernet(wan_delay);
        t.link(h0, r0, fast, QueueCfg::droptail_default());
        t.link(h1, r1, fast, QueueCfg::droptail_default());
        t.link(r0, r1, wan, QueueCfg::droptail_default());
        t
    }

    #[test]
    fn by_min_delay_splits_at_the_cut() {
        let topo = two_island_topo(SimDelta::from_millis(5));
        let p = Partition::by_min_delay(&topo, SimDelta::from_millis(1)).unwrap();
        assert_eq!(p.shards(), 2);
        assert_eq!(p.shard_of(NodeId(0)), p.shard_of(NodeId(1)));
        assert_eq!(p.shard_of(NodeId(2)), p.shard_of(NodeId(3)));
        assert_ne!(p.shard_of(NodeId(0)), p.shard_of(NodeId(2)));
        assert_eq!(p.lookahead(), Some(SimDelta::from_millis(5)));
    }

    #[test]
    fn zero_delay_cross_link_is_rejected_not_deadlocked() {
        let topo = two_island_topo(SimDelta::ZERO);
        let err = Partition::from_map(&topo, vec![0, 0, 1, 1]).unwrap_err();
        assert!(matches!(err, PartitionError::ZeroDelayCrossLink { .. }));
        let msg = err.to_string();
        assert!(msg.contains("zero propagation delay"), "unhelpful: {msg}");
    }

    #[test]
    fn sparse_and_mislength_maps_are_rejected() {
        let topo = two_island_topo(SimDelta::from_millis(5));
        assert!(matches!(
            Partition::from_map(&topo, vec![0, 0, 2, 2]).unwrap_err(),
            PartitionError::EmptyShard { shard: 1 }
        ));
        assert!(matches!(
            Partition::from_map(&topo, vec![0, 0, 1]).unwrap_err(),
            PartitionError::WrongLength { nodes: 4, map: 3 }
        ));
    }

    struct Count {
        got: u64,
    }
    impl NetHandler for Count {
        fn deliver(&mut self, _net: &mut Net, _host: NodeId, _pkt: Packet) {
            self.got += 1;
        }
        fn host_timer(&mut self, net: &mut Net, host: NodeId, token: u64) {
            // Token encodes the destination; one packet per tick, 1 ms apart.
            let pkt = Packet {
                src: host,
                dst: NodeId(token as u32),
                src_port: 0,
                dst_port: 0,
                dscp: crate::packet::Dscp::BestEffort,
                l4: L4::Udp,
                payload_len: 512,
                id: 0,
                born: SimTime::ZERO,
            };
            net.send_ip(pkt);
            let at = net.now() + SimDelta::from_millis(1);
            if at < SimTime::from_millis(200) {
                net.set_host_timer(host, at, token);
            }
        }
        fn cpu_done(&mut self, _net: &mut Net, _host: NodeId, _proc: mpichgq_dsrt::ProcId) {}
        fn control(&mut self, _net: &mut Net, _token: u64) {}
    }

    fn build_cross_traffic(shard: u32, part: &Partition) -> (Net, Count) {
        let topo = two_island_topo(SimDelta::from_millis(5));
        let mut net = topo.build();
        // Each shard arms its own host's tick: h0 (node 0, shard 0)
        // streams to h1 (node 2, shard 1) and vice versa.
        for (host, dst) in [(NodeId(0), NodeId(2)), (NodeId(2), NodeId(0))] {
            if part.shard_of(host) == shard {
                net.set_host_timer(host, SimTime::from_nanos(0), dst.0 as u64);
            }
        }
        (net, Count { got: 0 })
    }

    /// The acid test: a 2-shard world run on 1 and 2 threads, and the
    /// same physics run monolithically, all agree on delivered counts and
    /// per-channel wire counters.
    #[test]
    fn sharded_run_matches_monolithic_physics_and_is_thread_invariant() {
        let limit = SimTime::from_millis(250);
        let topo = two_island_topo(SimDelta::from_millis(5));
        let part = Partition::by_min_delay(&topo, SimDelta::from_millis(1)).unwrap();
        assert_eq!(part.shards(), 2);

        // Monolithic reference: both traffic sources in one world.
        let mut mono = two_island_topo(SimDelta::from_millis(5)).build();
        let mut mh = Count { got: 0 };
        mono.set_host_timer(NodeId(0), SimTime::from_nanos(0), 2);
        mono.set_host_timer(NodeId(2), SimTime::from_nanos(0), 0);
        mono.run_until(&mut mh, limit);
        assert!(mh.got > 0, "monolithic run delivered nothing");

        let run = |threads: usize| {
            run_partitioned(
                &part,
                threads,
                limit,
                |shard| build_cross_traffic(shard, &part),
                |shard, net, h| {
                    let wire: Vec<(u64, u64)> = net
                        .chan_ids()
                        .map(|c| (net.chan(c).tx_packets, net.chan(c).rx_packets))
                        .collect();
                    (shard, h.got, net.state_fingerprint(), wire)
                },
            )
        };
        let one = run(1);
        let two = run(2);
        assert_eq!(one, two, "thread count changed simulated state");

        // Per-channel physics: tx counted in the owner-of-from copy, rx in
        // the owner-of-to copy; summed across shard copies they must equal
        // the monolithic run exactly.
        let delivered: u64 = one.iter().map(|(_, got, _, _)| got).sum();
        assert_eq!(delivered, mh.got, "sharding changed delivery count");
        for c in mono.chan_ids() {
            let i = c.0 as usize;
            let tx: u64 = one.iter().map(|(_, _, _, w)| w[i].0).sum();
            let rx: u64 = one.iter().map(|(_, _, _, w)| w[i].1).sum();
            assert_eq!(tx, mono.chan(c).tx_packets, "chan {i} tx diverged");
            assert_eq!(rx, mono.chan(c).rx_packets, "chan {i} rx diverged");
        }
    }

    /// `run_windowed` with any window width is bit-identical to a plain
    /// `run_until` on the same world.
    #[test]
    fn windowed_single_shard_run_is_bit_identical_to_plain_run() {
        let limit = SimTime::from_millis(250);
        for window_us in [37, 1000, 250_000] {
            let mut a = two_island_topo(SimDelta::from_millis(5)).build();
            let mut ah = Count { got: 0 };
            a.set_host_timer(NodeId(0), SimTime::from_nanos(0), 2);
            a.run_until(&mut ah, limit);

            let mut b = two_island_topo(SimDelta::from_millis(5)).build();
            let mut bh = Count { got: 0 };
            b.set_host_timer(NodeId(0), SimTime::from_nanos(0), 2);
            run_windowed(&mut b, &mut bh, SimDelta::from_micros(window_us), limit);

            assert_eq!(a.state_fingerprint(), b.state_fingerprint());
            assert_eq!(ah.got, bh.got);
            assert_eq!(a.events_processed(), b.events_processed());
            assert_eq!(a.now(), b.now());
        }
    }

    /// Cross-shard fault plans are rejected loudly.
    #[test]
    #[should_panic(expected = "cross-shard")]
    fn cross_shard_fault_plan_is_rejected() {
        let topo = two_island_topo(SimDelta::from_millis(5));
        let part = Partition::by_min_delay(&topo, SimDelta::from_millis(1)).unwrap();
        let mut net = two_island_topo(SimDelta::from_millis(5)).build();
        bind_shard(&mut net, 0, &part);
        // Channels 4/5 are the WAN pair r0<->r1 (two islands built first).
        let plan = crate::faults::FaultPlan::new(1).at(
            SimTime::from_millis(1),
            crate::faults::FaultAction::LinkDown(crate::link::ChanId(4)),
        );
        net.install_fault_plan(plan);
    }
}
