//! Packet-lifecycle tracing: per-hop spans, per-flow latency histograms,
//! and deadline (SLO) conformance.
//!
//! The paper's Figures 7–8 are claims about *where delay accrues* — in the
//! sender's shaper, an EF or best-effort queue, serialization, or the wire.
//! The flight recorder's flat event ring cannot answer that, so this module
//! follows each packet through its life and decomposes one-way delay per
//! hop:
//!
//! ```text
//! send ──(shaper?)── enqueue ──queue── tx start ──tx── tx done ──wire── deliver
//!                       │                 │                          │
//!                       └── queue span ───┘     per hop              └─ e2e span
//! ```
//!
//! The [`PacketTracer`] is owned by `Net` as `Option<Box<...>>` (the same
//! pattern as the fault layer): when tracing is off, every hook is a single
//! predictable branch and the simulation byte-stream is unchanged. When on,
//! it maintains:
//!
//! * per-flow ([`FlowKey`]) one-way **delay** and **jitter** histograms,
//! * per-class (EF / best-effort) **queue-wait** histograms across all hops,
//! * a bounded log of lifecycle [`Span`]s for Chrome-trace export,
//! * per-flow **deadline** conformance: miss counters, miss-streak
//!   high-water marks, and `slo.miss` flight-recorder events.
//!
//! All times are nanoseconds of sim time; everything is deterministic.

use crate::classifier::FlowSpec;
use crate::link::{Chan, ChanId};
use crate::packet::{Dscp, FlowKey, Packet};
use mpichgq_obs::{FlightRecorder, Histogram, JsonWriter, Registry};
use mpichgq_sim::{FxHashMap, SimTime};

/// Default bound on retained lifecycle spans (~3 MB of span log).
pub const DEFAULT_MAX_SPANS: usize = 65_536;

/// What a lifecycle span or instant records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Waiting in an interface queue (duration = queue wait).
    Queue,
    /// Serializing onto the link (duration = serialization time).
    Tx,
    /// Propagating on the wire (duration = propagation delay).
    Wire,
    /// Whole packet life, birth to delivery (duration = one-way delay).
    E2e,
    /// Instant: held back by an egress shaper.
    Shaped,
    /// Instant: dropped by a full queue.
    DropQueueFull,
    /// Instant: dropped early by RED/WRED before the queue filled.
    DropRedEarly,
    /// Instant: dropped by an edge policer.
    DropPoliced,
    /// Instant: dropped by the fault layer (loss/corrupt/link-down).
    DropFault,
    /// Instant: delivered past its flow's deadline.
    SloMiss,
}

impl SpanKind {
    /// Stable label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Tx => "tx",
            SpanKind::Wire => "wire",
            SpanKind::E2e => "e2e",
            SpanKind::Shaped => "shaped",
            SpanKind::DropQueueFull => "drop.queue_full",
            SpanKind::DropRedEarly => "drop.red_early",
            SpanKind::DropPoliced => "drop.policed",
            SpanKind::DropFault => "drop.fault",
            SpanKind::SloMiss => "slo.miss",
        }
    }

    /// Complete spans export as Chrome `"X"` events; the rest as `"i"`.
    pub fn is_complete(self) -> bool {
        matches!(
            self,
            SpanKind::Queue | SpanKind::Tx | SpanKind::Wire | SpanKind::E2e
        )
    }
}

/// One recorded lifecycle span (or instant, when `dur_ns` is irrelevant).
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Start time, nanoseconds of sim time.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    pub kind: SpanKind,
    /// The channel this span happened on, or [`Span::NO_CHAN`] for
    /// flow-scoped spans (e2e, shaped, SLO misses).
    pub chan: u32,
    /// Packet trace id.
    pub pkt: u64,
    /// Dense flow index (see [`PacketTracer::flows`]).
    pub flow: u32,
}

impl Span {
    /// `chan` value for spans not tied to a channel.
    pub const NO_CHAN: u32 = u32::MAX;
}

/// Per-flow latency and conformance state.
#[derive(Debug)]
pub struct FlowRec {
    pub key: FlowKey,
    /// Stable display/metric name, e.g. `"n0p49152-n2p6000.tcp"`.
    pub name: String,
    /// One-way delay, birth to delivery, nanoseconds.
    pub delay: Histogram,
    /// Delay variation: `|delay - previous delay|`, nanoseconds.
    pub jitter: Histogram,
    last_delay_ns: Option<u64>,
    /// Delivery deadline; delay strictly above it is a miss.
    pub deadline_ns: Option<u64>,
    pub delivered: u64,
    pub misses: u64,
    miss_streak: u64,
    /// Longest run of consecutive misses.
    pub max_miss_streak: u64,
    pub worst_delay_ns: u64,
}

impl FlowRec {
    fn new(key: FlowKey) -> FlowRec {
        let proto = match key.proto {
            crate::packet::Proto::Tcp => "tcp",
            crate::packet::Proto::Udp => "udp",
        };
        FlowRec {
            name: format!(
                "{}p{}-{}p{}.{}",
                key.src, key.src_port, key.dst, key.dst_port, proto
            ),
            key,
            delay: Histogram::new(),
            jitter: Histogram::new(),
            last_delay_ns: None,
            deadline_ns: None,
            delivered: 0,
            misses: 0,
            miss_streak: 0,
            max_miss_streak: 0,
            worst_delay_ns: 0,
        }
    }
}

/// In-flight state of one traced packet.
#[derive(Debug, Clone, Copy)]
struct PacketLife {
    flow: u32,
    /// When the packet entered the queue of its current hop.
    enq_at: SimTime,
}

/// The lifecycle tracer. Created by `Net::enable_packet_tracing`; all
/// hooks are crate-internal and called from the network's hot paths behind
/// an `Option` check.
#[derive(Debug)]
pub struct PacketTracer {
    flow_ids: FxHashMap<FlowKey, u32>,
    flows: Vec<FlowRec>,
    active: FxHashMap<u64, PacketLife>,
    /// Queue wait of EF-marked packets, all hops.
    pub ef_wait: Histogram,
    /// Queue wait of AF-marked packets (all drop precedences), all hops.
    pub af_wait: Histogram,
    /// Queue wait of best-effort packets, all hops.
    pub be_wait: Histogram,
    spans: Vec<Span>,
    max_spans: usize,
    spans_dropped: u64,
    /// Deadline rules applied to flows on first sight (first match wins).
    deadline_rules: Vec<(FlowSpec, u64)>,
    total_misses: u64,
}

impl PacketTracer {
    pub(crate) fn new(max_spans: usize) -> PacketTracer {
        PacketTracer {
            flow_ids: FxHashMap::default(),
            flows: Vec::new(),
            active: FxHashMap::default(),
            ef_wait: Histogram::new(),
            af_wait: Histogram::new(),
            be_wait: Histogram::new(),
            spans: Vec::new(),
            max_spans,
            spans_dropped: 0,
            deadline_rules: Vec::new(),
            total_misses: 0,
        }
    }

    /// Registered flows, in first-seen order (dense `flow` indices).
    pub fn flows(&self) -> &[FlowRec] {
        &self.flows
    }

    /// Retained lifecycle spans, in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans discarded after the retention bound filled up.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Total deadline misses across all flows.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    pub(crate) fn add_deadline_rule(&mut self, spec: FlowSpec, deadline_ns: u64) {
        // Existing flows: first installed rule wins, so only fill gaps.
        for f in &mut self.flows {
            if f.deadline_ns.is_none() && spec_matches_key(&spec, &f.key) {
                f.deadline_ns = Some(deadline_ns);
            }
        }
        self.deadline_rules.push((spec, deadline_ns));
    }

    #[inline]
    fn push_span(&mut self, span: Span) {
        if self.spans.len() < self.max_spans {
            self.spans.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    fn flow_of(&mut self, pkt: &Packet) -> u32 {
        let key = FlowKey::of(pkt);
        if let Some(&i) = self.flow_ids.get(&key) {
            return i;
        }
        let i = self.flows.len() as u32;
        let mut rec = FlowRec::new(key);
        for (spec, dl) in &self.deadline_rules {
            // DSCP at send time is pre-marking, which is what deadline
            // specs written against the 5-tuple expect.
            if spec_matches_key(spec, &key) {
                rec.deadline_ns = Some(*dl);
                break;
            }
        }
        self.flows.push(rec);
        self.flow_ids.insert(key, i);
        i
    }

    /// Hook: packet injected at its source host (after id/birth stamping).
    pub(crate) fn on_send(&mut self, now: SimTime, pkt: &Packet) {
        let flow = self.flow_of(pkt);
        self.active.insert(pkt.id, PacketLife { flow, enq_at: now });
    }

    /// Hook: packet held back by an egress shaper.
    pub(crate) fn on_shaped(&mut self, now: SimTime, pkt_id: u64) {
        if let Some(life) = self.active.get(&pkt_id) {
            let flow = life.flow;
            self.push_span(Span {
                ts_ns: now.as_nanos(),
                dur_ns: 0,
                kind: SpanKind::Shaped,
                chan: Span::NO_CHAN,
                pkt: pkt_id,
                flow,
            });
        }
    }

    /// Hook: packet entered the queue of an interface.
    pub(crate) fn on_enqueue(&mut self, now: SimTime, pkt_id: u64) {
        if let Some(life) = self.active.get_mut(&pkt_id) {
            life.enq_at = now;
        }
    }

    /// Hook: packet left a queue and started transmitting on `chan`.
    /// Emits the hop's queue/tx/wire spans and the per-class queue-wait
    /// observation.
    pub(crate) fn on_tx_start(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        chan: ChanId,
        ser_ns: u64,
        wire_ns: u64,
    ) {
        let Some(life) = self.active.get(&pkt.id).copied() else {
            return; // packet predates tracing enablement
        };
        let wait = now.as_nanos().saturating_sub(life.enq_at.as_nanos());
        match pkt.dscp {
            Dscp::Ef => self.ef_wait.observe(wait),
            Dscp::Af(_) => self.af_wait.observe(wait),
            Dscp::BestEffort => self.be_wait.observe(wait),
        }
        let base = Span {
            ts_ns: life.enq_at.as_nanos(),
            dur_ns: wait,
            kind: SpanKind::Queue,
            chan: chan.0,
            pkt: pkt.id,
            flow: life.flow,
        };
        self.push_span(base);
        self.push_span(Span {
            ts_ns: now.as_nanos(),
            dur_ns: ser_ns,
            kind: SpanKind::Tx,
            ..base
        });
        self.push_span(Span {
            ts_ns: now.as_nanos() + ser_ns,
            dur_ns: wire_ns,
            kind: SpanKind::Wire,
            ..base
        });
    }

    /// Hook: packet destroyed before delivery. `chan` is the interface it
    /// died on, or [`Span::NO_CHAN`].
    pub(crate) fn on_drop(&mut self, now: SimTime, pkt_id: u64, kind: SpanKind, chan: u32) {
        if let Some(life) = self.active.remove(&pkt_id) {
            self.push_span(Span {
                ts_ns: now.as_nanos(),
                dur_ns: 0,
                kind,
                chan,
                pkt: pkt_id,
                flow: life.flow,
            });
        }
    }

    /// Hook: packet reached its destination host. Updates delay/jitter
    /// histograms and evaluates the flow's deadline; misses feed both the
    /// span log and the flight recorder (`slo.miss`).
    pub(crate) fn on_delivered(&mut self, now: SimTime, pkt: &Packet, fr: &mut FlightRecorder) {
        let Some(life) = self.active.remove(&pkt.id) else {
            return;
        };
        let delay_ns = now.as_nanos().saturating_sub(pkt.born.as_nanos());
        let f = &mut self.flows[life.flow as usize];
        f.delivered += 1;
        f.delay.observe(delay_ns);
        if let Some(prev) = f.last_delay_ns {
            f.jitter.observe(delay_ns.abs_diff(prev));
        }
        f.last_delay_ns = Some(delay_ns);
        if delay_ns > f.worst_delay_ns {
            f.worst_delay_ns = delay_ns;
        }
        let mut missed = false;
        if let Some(dl) = f.deadline_ns {
            if delay_ns > dl {
                missed = true;
                f.misses += 1;
                f.miss_streak += 1;
                if f.miss_streak > f.max_miss_streak {
                    f.max_miss_streak = f.miss_streak;
                }
            } else {
                f.miss_streak = 0;
            }
        }
        let flow = life.flow;
        self.push_span(Span {
            ts_ns: pkt.born.as_nanos(),
            dur_ns: delay_ns,
            kind: SpanKind::E2e,
            chan: Span::NO_CHAN,
            pkt: pkt.id,
            flow,
        });
        if missed {
            self.total_misses += 1;
            self.push_span(Span {
                ts_ns: now.as_nanos(),
                dur_ns: 0,
                kind: SpanKind::SloMiss,
                chan: Span::NO_CHAN,
                pkt: pkt.id,
                flow,
            });
            fr.record(now, "slo.miss", flow as u64, delay_ns as i64);
        }
    }

    /// Publish per-flow and per-class histograms plus SLO counters into
    /// the registry (called from `Net::publish_metrics`).
    pub(crate) fn publish(&self, m: &mut Registry) {
        m.record_hist("phb.ef.queue_wait_ns", &self.ef_wait);
        m.record_hist("phb.af.queue_wait_ns", &self.af_wait);
        m.record_hist("phb.be.queue_wait_ns", &self.be_wait);
        for f in &self.flows {
            m.record_hist(&format!("flow.{}.delay_ns", f.name), &f.delay);
            m.record_hist(&format!("flow.{}.jitter_ns", f.name), &f.jitter);
        }
        m.record_total("slo.misses", self.total_misses);
        m.record_total("trace.spans_dropped", self.spans_dropped);
    }

    /// Write the `"slo"` metrics section:
    /// `{"flows": [{"flow", "deadline_ns", "delivered", "misses",
    /// "miss_streak_max", "worst_delay_ns"}, ...], "total_misses": N}`.
    /// Flows are name-sorted; flows without a deadline report
    /// `"deadline_ns": null`.
    pub(crate) fn write_slo_json(&self, w: &mut JsonWriter) {
        let mut order: Vec<usize> = (0..self.flows.len()).collect();
        order.sort_by(|&a, &b| self.flows[a].name.cmp(&self.flows[b].name));
        w.begin_object();
        w.key("flows");
        w.begin_array();
        for i in order {
            let f = &self.flows[i];
            w.begin_object();
            w.key("flow");
            w.string(&f.name);
            w.key("deadline_ns");
            match f.deadline_ns {
                Some(d) => w.u64(d),
                None => w.raw("null"),
            }
            w.key("delivered");
            w.u64(f.delivered);
            w.key("misses");
            w.u64(f.misses);
            w.key("miss_streak_max");
            w.u64(f.max_miss_streak);
            w.key("worst_delay_ns");
            w.u64(f.worst_delay_ns);
            w.end_object();
        }
        w.end_array();
        w.key("total_misses");
        w.u64(self.total_misses);
        w.end_object();
    }

    /// Write the span log as a Chrome trace-event document (Perfetto and
    /// `chrome://tracing` load it).
    ///
    /// Layout: each channel is a "process" (`pid` = channel index + 1)
    /// named after its endpoints; flow-scoped spans (e2e, shaped, SLO
    /// misses) land on per-flow processes after the channels. Timestamps
    /// are microseconds with fixed 3-digit nanosecond fractions, so output
    /// is byte-stable; exact nanosecond values ride along in `args`.
    pub(crate) fn write_chrome_trace(&self, w: &mut JsonWriter, chans: &[Chan], names: &[String]) {
        let flow_pid_base = chans.len() as u64 + 1;
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        // Process-name metadata first: channels, then flows.
        for (i, c) in chans.iter().enumerate() {
            if self.spans.iter().all(|s| s.chan != i as u32) {
                continue; // idle channel: keep the trace small
            }
            write_process_name(
                w,
                i as u64 + 1,
                &format!(
                    "chan{} {}->{}",
                    i, names[c.from.0 as usize], names[c.to.0 as usize]
                ),
            );
        }
        for (i, f) in self.flows.iter().enumerate() {
            write_process_name(w, flow_pid_base + i as u64, &format!("flow {}", f.name));
        }
        for s in &self.spans {
            let pid = if s.chan == Span::NO_CHAN {
                flow_pid_base + s.flow as u64
            } else {
                s.chan as u64 + 1
            };
            w.begin_object();
            w.key("name");
            w.string(s.kind.label());
            w.key("ph");
            w.string(if s.kind.is_complete() { "X" } else { "i" });
            w.key("ts");
            w.raw(&us(s.ts_ns));
            if s.kind.is_complete() {
                w.key("dur");
                w.raw(&us(s.dur_ns));
            } else {
                w.key("s");
                w.string("p"); // process-scoped instant
            }
            w.key("pid");
            w.u64(pid);
            w.key("tid");
            w.u64(1);
            w.key("args");
            w.begin_object();
            w.key("pkt");
            w.u64(s.pkt);
            w.key("flow");
            w.string(&self.flows[s.flow as usize].name);
            w.key("ts_ns");
            w.u64(s.ts_ns);
            w.key("dur_ns");
            w.u64(s.dur_ns);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.key("displayTimeUnit");
        w.string("ms");
        // Summary block for qtrace: per-flow histograms + SLO state.
        w.key("otherData");
        w.begin_object();
        w.key("spans_dropped");
        w.u64(self.spans_dropped);
        w.key("flows");
        w.begin_array();
        let mut order: Vec<usize> = (0..self.flows.len()).collect();
        order.sort_by(|&a, &b| self.flows[a].name.cmp(&self.flows[b].name));
        for i in order {
            let f = &self.flows[i];
            w.begin_object();
            w.key("flow");
            w.string(&f.name);
            w.key("delay_ns");
            f.delay.write_json(w);
            w.key("jitter_ns");
            f.jitter.write_json(w);
            w.key("deadline_ns");
            match f.deadline_ns {
                Some(d) => w.u64(d),
                None => w.raw("null"),
            }
            w.key("delivered");
            w.u64(f.delivered);
            w.key("misses");
            w.u64(f.misses);
            w.key("miss_streak_max");
            w.u64(f.max_miss_streak);
            w.key("worst_delay_ns");
            w.u64(f.worst_delay_ns);
            w.end_object();
        }
        w.end_array();
        w.key("slo");
        self.write_slo_json(w);
        w.end_object();
        w.end_object();
    }
}

/// Match a deadline spec against a flow's 5-tuple. The DS field is not
/// part of [`FlowKey`] (marking happens downstream of the sender), so a
/// `dscp` constraint in the spec is ignored here.
fn spec_matches_key(spec: &FlowSpec, key: &FlowKey) -> bool {
    spec.src.is_none_or(|v| v == key.src)
        && spec.dst.is_none_or(|v| v == key.dst)
        && spec.proto.is_none_or(|v| v == key.proto)
        && spec.src_port.is_none_or(|v| v == key.src_port)
        && spec.dst_port.is_none_or(|v| v == key.dst_port)
}

/// Nanoseconds as a microsecond decimal with exactly three fraction
/// digits — a fixed-width, byte-stable JSON number.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn write_process_name(w: &mut JsonWriter, pid: u64, name: &str) {
    w.begin_object();
    w.key("name");
    w.string("process_name");
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(pid);
    w.key("tid");
    w.u64(0);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string(name);
    w.end_object();
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, Proto, L4};

    fn probe(src_port: u16) -> Packet {
        Packet {
            src: NodeId(0),
            dst: NodeId(2),
            src_port,
            dst_port: 6000,
            dscp: Dscp::BestEffort,
            l4: L4::Udp,
            payload_len: 100,
            id: 7,
            born: SimTime::from_millis(1),
        }
    }

    #[test]
    fn deadline_rules_apply_to_existing_and_future_flows() {
        let mut t = PacketTracer::new(16);
        let mut p1 = probe(1000);
        p1.id = 1;
        t.on_send(SimTime::ZERO, &p1);
        t.add_deadline_rule(
            FlowSpec::host_pair(NodeId(0), NodeId(2), Proto::Udp),
            5_000_000,
        );
        assert_eq!(t.flows()[0].deadline_ns, Some(5_000_000));
        let mut p2 = probe(2000);
        p2.id = 2;
        t.on_send(SimTime::ZERO, &p2);
        assert_eq!(t.flows()[1].deadline_ns, Some(5_000_000));
        // Non-matching flow stays deadline-free.
        let mut p3 = probe(3000);
        p3.dst = NodeId(9);
        p3.id = 3;
        t.on_send(SimTime::ZERO, &p3);
        assert_eq!(t.flows()[2].deadline_ns, None);
    }

    #[test]
    fn delivery_updates_delay_jitter_and_misses() {
        let mut t = PacketTracer::new(16);
        let mut fr = FlightRecorder::default();
        fr.enable(8);
        t.add_deadline_rule(FlowSpec::any(), 2_000_000); // 2 ms deadline
        let mut send_recv = |id: u64, born_ms: u64, deliver_ms: u64| {
            let mut p = probe(1000);
            p.id = id;
            p.born = SimTime::from_millis(born_ms);
            t.on_send(p.born, &p);
            t.on_delivered(SimTime::from_millis(deliver_ms), &p, &mut fr);
        };
        send_recv(1, 0, 1); // 1 ms: conformant
        send_recv(2, 10, 13); // 3 ms: miss
        send_recv(3, 20, 24); // 4 ms: miss (streak 2)
        send_recv(4, 30, 31); // 1 ms: streak resets
        let f = &t.flows()[0];
        assert_eq!(f.delivered, 4);
        assert_eq!(f.misses, 2);
        assert_eq!(f.max_miss_streak, 2);
        assert_eq!(f.worst_delay_ns, 4_000_000);
        assert_eq!(f.delay.count(), 4);
        assert_eq!(f.jitter.count(), 3);
        assert_eq!(t.total_misses(), 2);
        let miss_events: Vec<_> = fr.events().filter(|e| e.kind == "slo.miss").collect();
        assert_eq!(miss_events.len(), 2);
        assert_eq!(miss_events[0].key, 0); // flow index
        assert_eq!(miss_events[0].value, 3_000_000);
        // E2e spans recorded for every delivery, SloMiss instants for misses.
        let e2e = t.spans().iter().filter(|s| s.kind == SpanKind::E2e).count();
        assert_eq!(e2e, 4);
    }

    #[test]
    fn span_log_is_bounded() {
        let mut t = PacketTracer::new(2);
        let mut fr = FlightRecorder::default();
        for id in 0..5u64 {
            let mut p = probe(1000);
            p.id = id;
            t.on_send(SimTime::ZERO, &p);
            t.on_delivered(SimTime::from_millis(1), &p, &mut fr);
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans_dropped(), 3);
    }
}
