//! End-system traffic shaping (the globus-io hook).
//!
//! "Shaping is important when application traffic is bursty. If these bursts
//! are not smoothed to be less bursty, policing may cause packets to be
//! dropped. ... shaping can be performed either in the router or in the
//! application." (§2) and "An alternative approach is to incorporate
//! traffic-shaping support into the MPICH-GQ implementation on the
//! end-system." (§5.4)
//!
//! A [`Shaper`] sits on a host's egress path: packets matching its flow spec
//! are *delayed* (never dropped) until the token bucket conforms, smoothing
//! bursts so the edge policer sees an in-profile flow. MPICH-GQ's QoS agent
//! installs one when shaping is enabled (the paper's proposed remedy for the
//! Table 1 burstiness penalty).

use crate::classifier::FlowSpec;
use crate::packet::Packet;
use crate::tokenbucket::TokenBucket;
use mpichgq_sim::SimTime;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, Default)]
pub struct ShaperStats {
    pub passed: u64,
    pub delayed: u64,
    pub max_backlog_bytes: u64,
}

/// A leaky-bucket pacer for one flow on one host.
#[derive(Debug)]
pub struct Shaper {
    pub id: u64,
    pub spec: FlowSpec,
    pub bucket: TokenBucket,
    pub queue: VecDeque<Packet>,
    backlog_bytes: u64,
    /// Generation for lazy-cancelling release events.
    pub gen: u64,
    /// Whether a release event is currently scheduled.
    pub armed: bool,
    pub stats: ShaperStats,
}

/// What the host should do with a freshly sent packet.
#[derive(Debug)]
pub enum ShapeOutcome {
    /// Forward immediately (conformant, nothing queued ahead).
    PassThrough(Packet),
    /// Queued; if `arm_at` is set, schedule a release event for that time.
    Queued { arm_at: Option<SimTime> },
}

impl Shaper {
    pub fn new(id: u64, spec: FlowSpec, bucket: TokenBucket) -> Self {
        Shaper {
            id,
            spec,
            bucket,
            queue: VecDeque::new(),
            backlog_bytes: 0,
            gen: 0,
            armed: false,
            stats: ShaperStats::default(),
        }
    }

    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// Offer a packet to the shaper.
    pub fn offer(&mut self, now: SimTime, pkt: Packet) -> ShapeOutcome {
        let len = pkt.ip_len();
        if self.queue.is_empty() && self.bucket.try_consume(now, len) {
            self.stats.passed += 1;
            return ShapeOutcome::PassThrough(pkt);
        }
        self.stats.delayed += 1;
        self.backlog_bytes += len as u64;
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.backlog_bytes);
        self.queue.push_back(pkt);
        let arm_at = if self.armed {
            None
        } else {
            self.armed = true;
            self.gen += 1;
            Some(self.next_release(now))
        };
        ShapeOutcome::Queued { arm_at }
    }

    fn next_release(&mut self, now: SimTime) -> SimTime {
        let len = self
            .queue
            .front()
            .expect("release with empty queue")
            .ip_len();
        self.bucket.time_until_conformant(now, len)
    }

    /// A release event fired: drain all now-conformant packets into `out`
    /// (a caller-owned scratch buffer, so the per-release path allocates
    /// nothing), returning the time of the next release event if more
    /// packets remain queued.
    pub fn release_into(
        &mut self,
        now: SimTime,
        gen: u64,
        out: &mut Vec<Packet>,
    ) -> Option<SimTime> {
        if gen != self.gen || !self.armed {
            return None;
        }
        while let Some(front) = self.queue.front() {
            let len = front.ip_len();
            if self.bucket.try_consume(now, len) {
                self.backlog_bytes -= len as u64;
                out.push(self.queue.pop_front().unwrap());
            } else {
                break;
            }
        }
        if self.queue.is_empty() {
            self.armed = false;
            None
        } else {
            self.gen += 1;
            Some(self.next_release(now))
        }
    }

    /// Allocating convenience wrapper around [`Shaper::release_into`].
    pub fn release(&mut self, now: SimTime, gen: u64) -> (Vec<Packet>, Option<SimTime>) {
        let mut out = Vec::new();
        let next = self.release_into(now, gen, &mut out);
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Dscp, NodeId, L4};

    fn pkt(payload: u32) -> Packet {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1,
            dst_port: 2,
            dscp: Dscp::BestEffort,
            l4: L4::Udp,
            payload_len: payload,
            id: 0,
            born: SimTime::ZERO,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn conformant_packets_pass_through() {
        // 1000 B/s, 2000 B bucket.
        let mut s = Shaper::new(0, FlowSpec::any(), TokenBucket::new(8_000, 2_000));
        match s.offer(t(0), pkt(972)) {
            ShapeOutcome::PassThrough(_) => {}
            other => panic!("expected pass-through, got {other:?}"),
        }
        assert_eq!(s.stats.passed, 1);
    }

    #[test]
    fn burst_is_delayed_not_dropped() {
        let mut s = Shaper::new(0, FlowSpec::any(), TokenBucket::new(8_000, 1_000));
        // First 1000-byte packet passes; second queues with a release time.
        assert!(matches!(
            s.offer(t(0), pkt(972)),
            ShapeOutcome::PassThrough(_)
        ));
        let arm = match s.offer(t(0), pkt(972)) {
            ShapeOutcome::Queued { arm_at } => arm_at.unwrap(),
            other => panic!("{other:?}"),
        };
        assert_eq!(arm, t(1_000)); // 1000 bytes at 1000 B/s
                                   // Third packet queues behind without re-arming.
        assert!(matches!(
            s.offer(t(0), pkt(972)),
            ShapeOutcome::Queued { arm_at: None }
        ));
        assert_eq!(s.backlog_bytes(), 2_000);
        // Release at t=1s frees exactly one packet, re-arms for the next.
        let (pkts, next) = s.release(arm, s.gen);
        assert_eq!(pkts.len(), 1);
        assert_eq!(next.unwrap(), t(2_000));
        let (pkts, next) = s.release(t(2_000), s.gen);
        assert_eq!(pkts.len(), 1);
        assert!(next.is_none());
        assert_eq!(s.backlog_bytes(), 0);
        assert_eq!(s.stats.delayed, 2);
    }

    #[test]
    fn stale_release_is_ignored() {
        let mut s = Shaper::new(0, FlowSpec::any(), TokenBucket::new(8_000, 1_000));
        let _ = s.offer(t(0), pkt(972));
        let _ = s.offer(t(0), pkt(972));
        let old_gen = s.gen;
        // Force a re-arm by draining with the correct gen first.
        let (got, _) = s.release(t(1_000), old_gen);
        assert_eq!(got.len(), 1);
        // The old generation no longer matches.
        let (got, next) = s.release(t(1_000), old_gen);
        assert!(got.is_empty() && next.is_none());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut s = Shaper::new(0, FlowSpec::any(), TokenBucket::new(80_000, 1_000));
        let mut first = pkt(972);
        first.id = 1;
        let mut second = pkt(972);
        second.id = 2;
        let _ = s.offer(t(0), first);
        let _ = s.offer(t(0), second);
        let (got, _) = s.release(t(10_000), s.gen);
        let ids: Vec<u64> = got.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![2]); // first passed through; queue holds second
    }
}
