//! Edge-router packet classification, marking, and policing.
//!
//! "Routers that are at the 'edge' of a DS network recognize packets that
//! should receive better service by classifying the packets based on
//! information in the header, such as source and destination addresses and
//! ports. ... Once an edge router classifies a packet as needing better
//! service, it marks that packet in the header with a particular service."
//! (§2)
//!
//! A [`Classifier`] holds an ordered rule list (like Cisco MQC class maps);
//! the first matching rule wins. Each rule marks the packet's DSCP and may
//! police it against a [`TokenBucket`], either dropping non-conformant
//! packets (the paper's configuration) or demoting them to best-effort
//! (an ablation in our benches).

use crate::packet::{Dscp, NodeId, Packet, Proto};
use crate::tokenbucket::TokenBucket;
use mpichgq_sim::SimTime;

/// A wildcard-capable match on the packet 5-tuple plus its DS field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowSpec {
    pub src: Option<NodeId>,
    pub dst: Option<NodeId>,
    pub proto: Option<Proto>,
    pub src_port: Option<u16>,
    pub dst_port: Option<u16>,
    /// Match on the DS field — how a domain-ingress router polices the
    /// premium *aggregate* ("[a token bucket] is also used on the ingress
    /// router of a domain to police the premium aggregate", §5.1).
    pub dscp: Option<Dscp>,
}

impl FlowSpec {
    /// Match every packet (used for aggregate policing at domain ingress).
    pub fn any() -> FlowSpec {
        FlowSpec::default()
    }

    /// Match one direction of a transport flow exactly.
    pub fn exact(src: NodeId, dst: NodeId, proto: Proto, src_port: u16, dst_port: u16) -> FlowSpec {
        FlowSpec {
            src: Some(src),
            dst: Some(dst),
            proto: Some(proto),
            src_port: Some(src_port),
            dst_port: Some(dst_port),
            dscp: None,
        }
    }

    /// Match every packet already marked EF (the premium aggregate).
    pub fn ef_aggregate() -> FlowSpec {
        FlowSpec {
            dscp: Some(Dscp::Ef),
            ..FlowSpec::default()
        }
    }

    /// Match all traffic between a host pair (both ports wild) — how the
    /// QoS agent binds "all relevant flows" of a communicator link.
    pub fn host_pair(src: NodeId, dst: NodeId, proto: Proto) -> FlowSpec {
        FlowSpec {
            src: Some(src),
            dst: Some(dst),
            proto: Some(proto),
            src_port: None,
            dst_port: None,
            dscp: None,
        }
    }

    #[inline]
    pub fn matches(&self, p: &Packet) -> bool {
        self.src.is_none_or(|v| v == p.src)
            && self.dst.is_none_or(|v| v == p.dst)
            && self.proto.is_none_or(|v| v == p.proto())
            && self.src_port.is_none_or(|v| v == p.src_port)
            && self.dst_port.is_none_or(|v| v == p.dst_port)
            && self.dscp.is_none_or(|v| v == p.dscp)
    }
}

/// What to do with packets that exceed the policer's profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicingAction {
    /// Drop out-of-profile packets ("policing will throw out traffic above a
    /// certain rate", §2) — the paper's testbed configuration.
    Drop,
    /// Demote out-of-profile packets to best-effort instead of dropping.
    Demote,
    /// Keep the rule's class but escalate the drop precedence (RFC 2597
    /// style): an out-of-profile packet under an AF mark is forwarded as
    /// AF with [`AfPrec::escalated`](crate::packet::AfPrec::escalated)
    /// precedence, so WRED discards it
    /// first under congestion. Under a non-AF mark this behaves like
    /// [`Demote`](PolicingAction::Demote).
    Remark,
}

/// One classifier rule: match, mark, optionally police.
#[derive(Debug)]
pub struct Rule {
    pub spec: FlowSpec,
    pub mark: Dscp,
    pub policer: Option<TokenBucket>,
    pub action: PolicingAction,
    /// Stable id so reservations can be modified/cancelled.
    pub id: u64,
    /// Conformant packets/bytes and policed drops/demotions.
    pub stats: RuleStats,
}

#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStats {
    pub conformant_pkts: u64,
    pub conformant_bytes: u64,
    pub policed_pkts: u64,
    pub policed_bytes: u64,
}

/// Verdict of classification for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward (the packet's DSCP has been set as a side effect).
    Forward,
    /// Drop at the edge (policed).
    Drop,
}

/// Aggregate marking/policing counters across all of a classifier's rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassifierStats {
    /// Packets whose DS field was newly set to EF by a rule.
    pub marked_ef: u64,
    /// Packets whose DS field was newly set to an AF codepoint by a rule.
    pub marked_af: u64,
    /// Out-of-profile packets demoted to best-effort (Demote action).
    pub demoted: u64,
    /// Out-of-profile packets kept in class at escalated drop precedence
    /// (Remark action on an AF mark).
    pub remarked: u64,
}

/// An ordered list of rules applied at a router's edge ingress.
#[derive(Debug, Default)]
pub struct Classifier {
    rules: Vec<Rule>,
    next_id: u64,
    stats: ClassifierStats,
}

impl Classifier {
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Install a rule; returns its id for later removal.
    pub fn install(
        &mut self,
        spec: FlowSpec,
        mark: Dscp,
        policer: Option<TokenBucket>,
        action: PolicingAction,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.rules.push(Rule {
            spec,
            mark,
            policer,
            action,
            id,
            stats: RuleStats::default(),
        });
        id
    }

    /// Remove a rule by id; returns whether it existed.
    pub fn remove(&mut self, id: u64) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }

    /// Replace the policer of rule `id` (reservation modification).
    pub fn set_policer(&mut self, id: u64, policer: Option<TokenBucket>) -> bool {
        if let Some(r) = self.rules.iter_mut().find(|r| r.id == id) {
            r.policer = policer;
            true
        } else {
            false
        }
    }

    pub fn rule_stats(&self, id: u64) -> Option<RuleStats> {
        self.rules.iter().find(|r| r.id == id).map(|r| r.stats)
    }

    /// Aggregate mark/demote counters (observability snapshots).
    pub fn stats(&self) -> ClassifierStats {
        self.stats
    }

    /// Installed rules, in match order (observability snapshots).
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Mutable rule access for snapshot-time token-bucket level reads.
    pub(crate) fn rules_mut(&mut self) -> impl Iterator<Item = &mut Rule> {
        self.rules.iter_mut()
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classify (and possibly mark/police) `pkt`. First match wins; packets
    /// matching no rule pass through as-is (already best-effort).
    #[inline]
    pub fn classify(&mut self, now: SimTime, pkt: &mut Packet) -> Verdict {
        for r in &mut self.rules {
            if !r.spec.matches(pkt) {
                continue;
            }
            let len = pkt.ip_len();
            let conforms = match &mut r.policer {
                Some(tb) => tb.try_consume(now, len),
                None => true,
            };
            if conforms {
                match r.mark {
                    Dscp::Ef if pkt.dscp != Dscp::Ef => self.stats.marked_ef += 1,
                    Dscp::Af(_) if !matches!(pkt.dscp, Dscp::Af(_)) => self.stats.marked_af += 1,
                    _ => {}
                }
                pkt.dscp = r.mark;
                r.stats.conformant_pkts += 1;
                r.stats.conformant_bytes += len as u64;
                return Verdict::Forward;
            }
            r.stats.policed_pkts += 1;
            r.stats.policed_bytes += len as u64;
            return match r.action {
                PolicingAction::Drop => Verdict::Drop,
                PolicingAction::Demote => {
                    self.stats.demoted += 1;
                    pkt.dscp = Dscp::BestEffort;
                    Verdict::Forward
                }
                PolicingAction::Remark => {
                    if let Dscp::Af(prec) = r.mark {
                        self.stats.remarked += 1;
                        pkt.dscp = Dscp::Af(prec.escalated());
                    } else {
                        self.stats.demoted += 1;
                        pkt.dscp = Dscp::BestEffort;
                    }
                    Verdict::Forward
                }
            };
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::L4;

    fn pkt(src: u32, dst: u32, sport: u16, dport: u16) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            src_port: sport,
            dst_port: dport,
            dscp: Dscp::BestEffort,
            l4: L4::Udp,
            payload_len: 972, // ip_len = 1000
            id: 0,
            born: SimTime::ZERO,
        }
    }

    #[test]
    fn exact_spec_matching() {
        let spec = FlowSpec::exact(NodeId(1), NodeId(2), Proto::Udp, 10, 20);
        assert!(spec.matches(&pkt(1, 2, 10, 20)));
        assert!(!spec.matches(&pkt(1, 2, 10, 21)));
        assert!(!spec.matches(&pkt(2, 1, 10, 20)));
    }

    #[test]
    fn host_pair_ignores_ports() {
        let spec = FlowSpec::host_pair(NodeId(1), NodeId(2), Proto::Udp);
        assert!(spec.matches(&pkt(1, 2, 1, 1)));
        assert!(spec.matches(&pkt(1, 2, 99, 99)));
        assert!(!spec.matches(&pkt(2, 1, 1, 1)));
    }

    #[test]
    fn marking_without_policing() {
        let mut c = Classifier::new();
        c.install(FlowSpec::any(), Dscp::Ef, None, PolicingAction::Drop);
        let mut p = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(SimTime::ZERO, &mut p), Verdict::Forward);
        assert_eq!(p.dscp, Dscp::Ef);
    }

    #[test]
    fn policing_drops_out_of_profile() {
        let mut c = Classifier::new();
        // 2000-byte bucket: two 1000-byte packets conform, the third drops.
        let tb = TokenBucket::new(8_000, 2_000);
        let id = c.install(FlowSpec::any(), Dscp::Ef, Some(tb), PolicingAction::Drop);
        let now = SimTime::ZERO;
        for _ in 0..2 {
            let mut p = pkt(1, 2, 1, 1);
            assert_eq!(c.classify(now, &mut p), Verdict::Forward);
            assert_eq!(p.dscp, Dscp::Ef);
        }
        let mut p = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(now, &mut p), Verdict::Drop);
        let st = c.rule_stats(id).unwrap();
        assert_eq!(st.conformant_pkts, 2);
        assert_eq!(st.policed_pkts, 1);
    }

    #[test]
    fn demote_marks_best_effort_instead_of_dropping() {
        let mut c = Classifier::new();
        let tb = TokenBucket::new(8_000, 1_000);
        c.install(FlowSpec::any(), Dscp::Ef, Some(tb), PolicingAction::Demote);
        let now = SimTime::ZERO;
        let mut p1 = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(now, &mut p1), Verdict::Forward);
        assert_eq!(p1.dscp, Dscp::Ef);
        let mut p2 = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(now, &mut p2), Verdict::Forward);
        assert_eq!(p2.dscp, Dscp::BestEffort);
    }

    #[test]
    fn first_match_wins_and_removal_works() {
        let mut c = Classifier::new();
        let id1 = c.install(
            FlowSpec::host_pair(NodeId(1), NodeId(2), Proto::Udp),
            Dscp::Ef,
            None,
            PolicingAction::Drop,
        );
        c.install(
            FlowSpec::any(),
            Dscp::BestEffort,
            None,
            PolicingAction::Drop,
        );
        let mut p = pkt(1, 2, 5, 5);
        c.classify(SimTime::ZERO, &mut p);
        assert_eq!(p.dscp, Dscp::Ef);
        assert!(c.remove(id1));
        assert!(!c.remove(id1));
        let mut p = pkt(1, 2, 5, 5);
        c.classify(SimTime::ZERO, &mut p);
        assert_eq!(p.dscp, Dscp::BestEffort);
    }

    #[test]
    fn ef_aggregate_spec_matches_marked_packets_only() {
        let spec = FlowSpec::ef_aggregate();
        let mut p = pkt(1, 2, 1, 1);
        assert!(!spec.matches(&p));
        p.dscp = Dscp::Ef;
        assert!(spec.matches(&p));
    }

    #[test]
    fn aggregate_policer_bounds_the_ef_class() {
        // Two upstream-marked EF flows pass a domain-ingress aggregate
        // policer with a 2000-byte bucket: only two 1000-byte packets of
        // the combined class conform.
        let mut c = Classifier::new();
        c.install(
            FlowSpec::ef_aggregate(),
            Dscp::Ef,
            Some(TokenBucket::new(8_000, 2_000)),
            PolicingAction::Drop,
        );
        let now = SimTime::ZERO;
        let mut fwd = 0;
        for i in 0..4 {
            let mut p = pkt(1 + i % 2, 2, 1, 1);
            p.dscp = Dscp::Ef;
            if c.classify(now, &mut p) == Verdict::Forward {
                fwd += 1;
            }
        }
        assert_eq!(fwd, 2);
        // Best-effort traffic is untouched by the aggregate rule.
        let mut be = pkt(3, 2, 1, 1);
        assert_eq!(c.classify(now, &mut be), Verdict::Forward);
        assert_eq!(be.dscp, Dscp::BestEffort);
    }

    #[test]
    fn remark_escalates_af_drop_precedence() {
        use crate::packet::AfPrec;
        let mut c = Classifier::new();
        let tb = TokenBucket::new(8_000, 1_000);
        c.install(
            FlowSpec::any(),
            Dscp::Af(AfPrec::Low),
            Some(tb),
            PolicingAction::Remark,
        );
        let now = SimTime::ZERO;
        let mut p1 = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(now, &mut p1), Verdict::Forward);
        assert_eq!(p1.dscp, Dscp::Af(AfPrec::Low));
        let mut p2 = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(now, &mut p2), Verdict::Forward);
        assert_eq!(p2.dscp, Dscp::Af(AfPrec::Medium));
        assert_eq!(c.stats().marked_af, 1);
        assert_eq!(c.stats().remarked, 1);
    }

    #[test]
    fn unmatched_packets_pass_through() {
        let mut c = Classifier::new();
        c.install(
            FlowSpec::host_pair(NodeId(7), NodeId(8), Proto::Tcp),
            Dscp::Ef,
            None,
            PolicingAction::Drop,
        );
        let mut p = pkt(1, 2, 1, 1);
        assert_eq!(c.classify(SimTime::ZERO, &mut p), Verdict::Forward);
        assert_eq!(p.dscp, Dscp::BestEffort);
    }
}
