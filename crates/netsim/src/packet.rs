//! Packets and protocol headers.
//!
//! Like classic network simulators (ns-2), the network layer knows the
//! *formats* of transport headers — routers classify on ports and the
//! DS field — while the transport *behaviour* (TCP state machines) lives in
//! the `mpichgq-tcp` crate. Payloads are modeled by length only; reliable
//! in-order delivery lets higher layers reconstruct message contents from a
//! side channel without copying bulk bytes through every queue.

use mpichgq_sim::SimTime;
use std::fmt;

/// A node in the network (host or router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Drop precedence within the Assured Forwarding PHB (RFC 2597): under
/// congestion, `High` precedence packets are discarded first and `Low`
/// last. Policers escalate the precedence of out-of-profile AF traffic
/// instead of dropping it at the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AfPrec {
    /// In-profile: dropped last.
    #[default]
    Low,
    Medium,
    /// Out-of-profile: dropped first.
    High,
}

impl AfPrec {
    /// Index into per-precedence tables (0 = `Low` … 2 = `High`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            AfPrec::Low => 0,
            AfPrec::Medium => 1,
            AfPrec::High => 2,
        }
    }

    /// The next-worse precedence (saturating at `High`) — what a policer's
    /// `Remark` action assigns to non-conformant AF traffic.
    #[inline]
    pub fn escalated(self) -> AfPrec {
        match self {
            AfPrec::Low => AfPrec::Medium,
            AfPrec::Medium | AfPrec::High => AfPrec::High,
        }
    }
}

/// Differentiated Services code point. We model the paper's two PHBs —
/// default (best-effort) and Expedited Forwarding (RFC 2598) — plus an
/// Assured Forwarding class (RFC 2597) with three drop precedences,
/// scheduled between EF and best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dscp {
    #[default]
    BestEffort,
    /// Assured Forwarding: weighted/assured service with per-packet drop
    /// precedence ([`AfPrec`]).
    Af(AfPrec),
    /// Expedited Forwarding: served from the strict-priority queue.
    Ef,
}

/// Transport protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    Tcp,
    Udp,
}

/// TCP header flags (only those the Reno model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// TCP header fields carried through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    pub seq: u64,
    pub ack: u64,
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub wnd: u32,
}

/// Transport header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4 {
    Tcp(TcpHeader),
    Udp,
}

pub const IP_HEADER_BYTES: u32 = 20;
pub const TCP_HEADER_BYTES: u32 = 20;
pub const UDP_HEADER_BYTES: u32 = 8;

/// One IP packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    pub src: NodeId,
    pub dst: NodeId,
    pub src_port: u16,
    pub dst_port: u16,
    pub dscp: Dscp,
    pub l4: L4,
    /// Transport payload length in bytes (contents are modeled out of band).
    pub payload_len: u32,
    /// Monotonic id for tracing.
    pub id: u64,
    /// Sim time the packet entered the network ([`Net::send_ip`] stamps
    /// it); one-way delay at delivery is `now - born`. Constructors may
    /// leave it at [`SimTime::ZERO`].
    ///
    /// [`Net::send_ip`]: crate::Net::send_ip
    pub born: SimTime,
}

impl Packet {
    #[inline]
    pub fn proto(&self) -> Proto {
        match self.l4 {
            L4::Tcp(_) => Proto::Tcp,
            L4::Udp => Proto::Udp,
        }
    }

    /// Total IP datagram length (what routers queue and police on).
    #[inline]
    pub fn ip_len(&self) -> u32 {
        let l4h = match self.l4 {
            L4::Tcp(_) => TCP_HEADER_BYTES,
            L4::Udp => UDP_HEADER_BYTES,
        };
        IP_HEADER_BYTES + l4h + self.payload_len
    }

    #[inline]
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.l4 {
            L4::Tcp(h) => Some(h),
            L4::Udp => None,
        }
    }
}

/// A flow's 5-tuple endpoints (as extracted from an MPI communicator by the
/// QoS agent: "basically port and machine names").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub src: NodeId,
    pub dst: NodeId,
    pub proto: Proto,
    pub src_port: u16,
    pub dst_port: u16,
}

impl FlowKey {
    #[inline]
    pub fn of(pkt: &Packet) -> FlowKey {
        FlowKey {
            src: pkt.src,
            dst: pkt.dst,
            proto: pkt.proto(),
            src_port: pkt.src_port,
            dst_port: pkt.dst_port,
        }
    }

    /// The same flow viewed from the other direction (for ACK channels).
    #[inline]
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            proto: self.proto,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(l4: L4, payload: u32) -> Packet {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            src_port: 1000,
            dst_port: 2000,
            dscp: Dscp::BestEffort,
            l4,
            payload_len: payload,
            id: 0,
            born: SimTime::ZERO,
        }
    }

    #[test]
    fn ip_len_includes_headers() {
        let t = pkt(
            L4::Tcp(TcpHeader {
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                wnd: 0,
            }),
            1460,
        );
        assert_eq!(t.ip_len(), 1500);
        let u = pkt(L4::Udp, 1472);
        assert_eq!(u.ip_len(), 1500);
    }

    #[test]
    fn flow_key_reversal() {
        let p = pkt(L4::Udp, 100);
        let k = FlowKey::of(&p);
        let r = k.reversed();
        assert_eq!(r.src, NodeId(1));
        assert_eq!(r.dst, NodeId(0));
        assert_eq!(r.src_port, 2000);
        assert_eq!(r.dst_port, 1000);
        assert_eq!(r.reversed(), k);
    }
}
