//! Links: directed channels with bandwidth, propagation delay, and
//! layer-2 framing overhead.
//!
//! GARNET's routers were "connected by OC3 ATM connections; across wide area
//! links ... by VCs of varying capacity. End system computers are connected
//! to routers by either switched Fast Ethernet or OC3" (§5.1). Framing
//! matters: the paper's observation that "we require a reservation value of
//! around 1.06 of the sending rate, because of TCP packet overheads" (§5.3)
//! is reproduced here by accounting for per-packet header and cell overhead
//! when serializing onto a link.

use crate::packet::NodeId;
use mpichgq_sim::SimDelta;

/// Layer-2 framing applied when a packet is transmitted on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Framing {
    /// No overhead beyond the IP datagram itself.
    #[default]
    None,
    /// Ethernet: 14 B header + 4 B FCS + 8 B preamble + 12 B inter-frame gap.
    Ethernet,
    /// ATM AAL5 (OC3): 8 B LLC/SNAP + 8 B AAL5 trailer, padded to 48-byte
    /// cells, each carried in a 53-byte cell.
    AtmAal5,
}

impl Framing {
    /// Bytes actually occupying the wire for an `ip_len`-byte datagram.
    #[inline]
    pub fn wire_bytes(self, ip_len: u32) -> u32 {
        match self {
            Framing::None => ip_len,
            Framing::Ethernet => ip_len + 38,
            Framing::AtmAal5 => {
                let aal5 = ip_len + 8 + 8;
                let cells = aal5.div_ceil(48);
                cells * 53
            }
        }
    }
}

/// Identifies one *direction* of a link (an outgoing interface of `from`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(pub u32);

/// Configuration for one link direction.
#[derive(Debug, Clone, Copy)]
pub struct LinkCfg {
    pub bandwidth_bps: u64,
    pub delay: SimDelta,
    pub framing: Framing,
}

impl LinkCfg {
    /// Switched Fast Ethernet host attachment.
    pub fn fast_ethernet(delay: SimDelta) -> LinkCfg {
        LinkCfg {
            bandwidth_bps: 100_000_000,
            delay,
            framing: Framing::Ethernet,
        }
    }
    /// OC3 ATM (155.52 Mb/s line rate) attachment or trunk.
    pub fn oc3(delay: SimDelta) -> LinkCfg {
        LinkCfg {
            bandwidth_bps: 155_520_000,
            delay,
            framing: Framing::AtmAal5,
        }
    }
    /// A wide-area VC of the given capacity over ATM.
    pub fn atm_vc(bandwidth_bps: u64, delay: SimDelta) -> LinkCfg {
        LinkCfg {
            bandwidth_bps,
            delay,
            framing: Framing::AtmAal5,
        }
    }
}

/// One direction of a point-to-point link.
#[derive(Debug)]
pub struct Chan {
    pub from: NodeId,
    pub to: NodeId,
    pub cfg: LinkCfg,
    /// Set on host→router channels: the downstream router treats arrivals as
    /// edge ingress (classification/policing applies).
    pub edge_ingress: bool,
    pub busy: bool,
    /// Transmission counters.
    pub tx_packets: u64,
    pub tx_bytes_wire: u64,
    /// Packets whose propagation completed (counted at delivery, before any
    /// fault verdict). `tx_packets - rx_packets` is the wire in-flight count
    /// the conservation audit charges to this channel.
    pub rx_packets: u64,
    /// Packets purged from this channel's queue by a `HostCrash` (popped
    /// but never transmitted; accounted as `faults.drops.host_down`).
    pub purged: u64,
}

impl Chan {
    #[inline]
    pub fn serialization(&self, ip_len: u32) -> SimDelta {
        SimDelta::transmission(
            self.cfg.framing.wire_bytes(ip_len) as u64,
            self.cfg.bandwidth_bps,
        )
    }

    /// Achieved utilization of this direction over `elapsed` seconds.
    pub fn utilization(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        (self.tx_bytes_wire as f64 * 8.0) / (self.cfg.bandwidth_bps as f64 * elapsed_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_overheads() {
        assert_eq!(Framing::None.wire_bytes(1500), 1500);
        assert_eq!(Framing::Ethernet.wire_bytes(1500), 1538);
        // 1500 + 16 = 1516 -> 32 cells -> 1696 bytes.
        assert_eq!(Framing::AtmAal5.wire_bytes(1500), 1696);
        // A 40-byte ACK: 40+16=56 -> 2 cells -> 106 bytes (cell tax is huge).
        assert_eq!(Framing::AtmAal5.wire_bytes(40), 106);
    }

    #[test]
    fn atm_overhead_factor_for_full_segments() {
        // Full 1500-byte datagrams over AAL5: ~13% wire overhead; relative
        // to the 1460-byte TCP payload this is the paper's ">1.06" regime.
        let wire = Framing::AtmAal5.wire_bytes(1500) as f64;
        assert!(wire / 1460.0 > 1.06 && wire / 1460.0 < 1.2);
    }

    #[test]
    fn serialization_time() {
        let chan = Chan {
            from: NodeId(0),
            to: NodeId(1),
            cfg: LinkCfg {
                bandwidth_bps: 8_000_000,
                delay: SimDelta::ZERO,
                framing: Framing::None,
            },
            edge_ingress: false,
            busy: false,
            tx_packets: 0,
            tx_bytes_wire: 0,
            rx_packets: 0,
            purged: 0,
        };
        // 1000 bytes at 8 Mb/s = 1 ms.
        assert_eq!(chan.serialization(1000), SimDelta::from_millis(1));
    }

    #[test]
    fn presets() {
        let fe = LinkCfg::fast_ethernet(SimDelta::from_micros(50));
        assert_eq!(fe.bandwidth_bps, 100_000_000);
        assert_eq!(fe.framing, Framing::Ethernet);
        let oc3 = LinkCfg::oc3(SimDelta::from_millis(1));
        assert_eq!(oc3.framing, Framing::AtmAal5);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use crate::net::TopoBuilder;
    use crate::packet::{Dscp, Packet, L4};
    use crate::queue::QueueCfg;
    use mpichgq_dsrt::ProcId;
    use mpichgq_sim::SimTime;

    struct Sink;
    impl crate::net::NetHandler for Sink {
        fn deliver(&mut self, _n: &mut crate::net::Net, _h: NodeId, _p: Packet) {}
        fn host_timer(&mut self, _n: &mut crate::net::Net, _h: NodeId, _t: u64) {}
        fn cpu_done(&mut self, _n: &mut crate::net::Net, _h: NodeId, _p: ProcId) {}
        fn control(&mut self, _n: &mut crate::net::Net, _t: u64) {}
    }

    #[test]
    fn chan_counters_and_utilization() {
        let mut b = TopoBuilder::new(1);
        let h1 = b.host("h1");
        let h2 = b.host("h2");
        let cfg = LinkCfg {
            bandwidth_bps: 8_000_000,
            delay: SimDelta::from_millis(1),
            framing: Framing::None,
        };
        let (ab, _) = b.link(h1, h2, cfg, QueueCfg::droptail_default());
        let mut net = b.build();
        // Ten 1000-byte datagrams = 80_000 bits over the first 10 ms of tx.
        for _ in 0..10 {
            net.send_ip(Packet {
                src: h1,
                dst: h2,
                src_port: 1,
                dst_port: 2,
                dscp: Dscp::BestEffort,
                l4: L4::Udp,
                payload_len: 972,
                id: 0,
                born: SimTime::ZERO,
            });
        }
        net.run_to_quiescence(&mut Sink);
        let c = net.chan(ab);
        assert_eq!(c.tx_packets, 10);
        assert_eq!(c.tx_bytes_wire, 10_000);
        // 80 kb over 8 Mb/s = 10 ms of wire time; over 20 ms elapsed = 50%.
        assert!((c.utilization(0.020) - 0.5).abs() < 1e-9);
        assert_eq!(c.utilization(0.0), 0.0);
        // The queue accounting agrees.
        let qs = net.queue_stats(ab);
        assert_eq!(qs.dequeued, 10);
        assert_eq!(qs.bytes_dequeued, 10_000);
    }
}
