//! Collection strategies: `collection::vec(element, size_range)`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length distribution for a generated `Vec`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0u64..5, 2..7);
        let mut rng = TestRng::for_case("collection::vec", 3);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
