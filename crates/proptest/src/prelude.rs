//! `use proptest::prelude::*;` — everything the repo's property tests name.

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
