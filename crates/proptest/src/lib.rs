//! A minimal, fully offline stand-in for the `proptest` crate.
//!
//! The repo's property tests were written against the real proptest API
//! (`proptest! { ... }`, range strategies, `prop_oneof!`, `prop_map`,
//! `collection::vec`, `prop_assert*`). The build environment has no access
//! to a crates registry, so this crate reimplements exactly the subset those
//! tests use, and the workspace renames it to `proptest` so test sources
//! stay untouched.
//!
//! Differences from real proptest, by design:
//! - Generation is deterministic: each `(test name, case index)` pair seeds a
//!   SplitMix64 stream, so failures reproduce exactly with no persistence
//!   files (`*.proptest-regressions` files are ignored — don't commit them;
//!   pin a historical failure as an explicit `#[test]` that replays the
//!   shrunk inputs, as `tests/property.rs` does).
//! - No shrinking. A failing case panics with the case index; rerunning the
//!   test replays it.

pub mod collection;
pub mod prelude;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic SplitMix64 generator, seeded from the test path and case
/// index so every case is independent and reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // Warm up so nearby seeds decorrelate.
        rng.next_u64();
        rng
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test sizes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// The core macro: runs each contained `fn` body over `cases` generated
/// inputs. Supports the `#![proptest_config(...)]` inner attribute and one
/// or more `name in strategy` parameters per test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
