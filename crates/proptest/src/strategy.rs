//! Value-generation strategies: the subset of proptest's `Strategy` zoo the
//! repo's tests actually use (ranges, tuples, `prop_map`, unions, `any`).

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a deterministic RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy (what `prop_oneof!` arms collapse to).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain generator backed by raw RNG output.
pub struct AnyStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! arbitrary_via {
    ($($t:ty => $f:expr;)*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { gen: $f }
            }
        }
    )*};
}

arbitrary_via! {
    bool => |r| r.next_u64() & 1 == 1;
    u8 => |r| r.next_u64() as u8;
    u16 => |r| r.next_u64() as u16;
    u32 => |r| r.next_u64() as u32;
    u64 => |r| r.next_u64();
    usize => |r| r.next_u64() as usize;
    i8 => |r| r.next_u64() as i8;
    i16 => |r| r.next_u64() as i16;
    i32 => |r| r.next_u64() as i32;
    i64 => |r| r.next_u64() as i64;
    isize => |r| r.next_u64() as isize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..1_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = Union::new(vec![
            (0u64..10).prop_map(|v| v * 2).boxed(),
            (100u64..110).boxed(),
        ]);
        let mut rng = TestRng::for_case("strategy::union", 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0 || (100..110).contains(&v), "{v}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("same", 7);
        let mut b = TestRng::for_case("same", 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
