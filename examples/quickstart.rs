//! Quickstart: QoS for an MPI program in ~60 lines of user code.
//!
//! Builds the GARNET testbed model, launches a two-rank MPI job under
//! heavy UDP contention, and runs a ping-pong exchange twice: once
//! best-effort, once after storing a premium QoS attribute on the
//! communicator (the paper's Figure 3 mechanism). Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpichgq::apps::{GarnetLab, PingPong};
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::JobBuilder;
use mpichgq::netsim::GarnetCfg;
use mpichgq::sim::SimTime;

fn run(premium: bool) -> f64 {
    // The testbed: premium + competitive host pairs around three routers,
    // with GARA managing 70% of each trunk for expedited forwarding.
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);

    // The contention: a UDP generator "quite capable of overwhelming any
    // TCP application that does not have a reservation" (§5.2).
    lab.add_contention(150_000_000, SimTime::ZERO, SimTime::from_secs(10));

    // The MPI job, with the MPICH-GQ QoS agent attached.
    let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());

    // 10 KB messages; request 2 Mb/s premium bandwidth if asked to.
    let qos = premium.then(|| (env, QosAttribute::premium(2_000.0, 10_000)));
    let (rank0, rank1, result) =
        PingPong::pair(10_000, SimTime::from_secs(2), SimTime::from_secs(10), qos);

    builder
        .rank(lab.premium_src, Box::new(rank0))
        .rank(lab.premium_dst, Box::new(rank1))
        .launch(&mut lab.sim);

    lab.run_until(SimTime::from_secs(10));
    let r = result.borrow();
    r.one_way_kbps()
}

fn main() {
    let best_effort = run(false);
    let premium = run(true);
    println!("ping-pong one-way throughput under heavy contention:");
    println!("  best-effort: {best_effort:>8.0} Kb/s");
    println!("  premium:     {premium:>8.0} Kb/s");
    assert!(premium > 10.0 * best_effort.max(1.0));
    println!("the reservation protects the flow (paper §5.2).");
}
