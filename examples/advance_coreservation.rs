//! GARA's distinguishing features (§4.2): advance reservations booked for
//! a future interval, atomic co-reservation of network + CPU + storage,
//! and reservation monitoring through status callbacks.
//!
//! ```text
//! cargo run --release --example advance_coreservation
//! ```

use mpichgq::apps::GarnetLab;
use mpichgq::gara::{CpuRequest, NetworkRequest, Request, StartSpec, Status, StorageRequest};
use mpichgq::netsim::{DepthRule, GarnetCfg, PolicingAction, Proto};
use mpichgq::sim::{SimDelta, SimTime};

fn main() {
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    let (src, dst) = (lab.premium_src, lab.premium_dst);
    let proc = lab.sim.net.cpu_add_process(src);

    // Subscribe to reservation status changes (the callback interface).
    lab.with_gara(|g, _net| {
        g.manage_storage("dpss-1", 50_000_000);
        g.subscribe(Box::new(|id, st| {
            println!("  [callback] reservation {id:?} -> {st:?}");
        }));
    });

    // Atomically co-reserve, for the window [5 s, 12 s):
    //   * 20 Mb/s of premium network bandwidth,
    //   * 80% of the sending host's CPU,
    //   * 10 MB/s from the storage server feeding the pipeline.
    println!("booking an advance co-reservation for t = 5..12 s:");
    let ids = lab.with_gara(|g, net| {
        g.co_reserve(
            net,
            vec![
                (
                    Request::Network(NetworkRequest {
                        src,
                        dst,
                        proto: Proto::Tcp,
                        src_port: None,
                        dst_port: None,
                        rate_bps: 20_000_000,
                        depth: DepthRule::Normal,
                        action: PolicingAction::Drop,
                        shape_at_source: false,
                    }),
                    StartSpec::At(SimTime::from_secs(5)),
                    Some(SimDelta::from_secs(7)),
                ),
                (
                    Request::Cpu(CpuRequest {
                        host: src,
                        proc,
                        fraction: 0.8,
                    }),
                    StartSpec::At(SimTime::from_secs(5)),
                    Some(SimDelta::from_secs(7)),
                ),
                (
                    Request::Storage(StorageRequest {
                        server: "dpss-1".into(),
                        bytes_per_sec: 10_000_000,
                    }),
                    StartSpec::At(SimTime::from_secs(5)),
                    Some(SimDelta::from_secs(7)),
                ),
            ],
        )
        .expect("co-reservation admitted")
    });
    println!("granted handles: {ids:?}");

    // Oversubscription of the booked window is refused up front.
    let err = lab.with_gara(|g, net| {
        g.reserve(
            net,
            Request::Network(NetworkRequest {
                src,
                dst,
                proto: Proto::Tcp,
                src_port: None,
                dst_port: None,
                rate_bps: 100_000_000,
                depth: DepthRule::Normal,
                action: PolicingAction::Drop,
                shape_at_source: false,
            }),
            StartSpec::At(SimTime::from_secs(6)),
            Some(SimDelta::from_secs(1)),
        )
    });
    assert!(
        err.is_err(),
        "bandwidth broker must refuse oversubscription"
    );
    println!("a competing 100 Mb/s request overlapping the window is refused.");

    // A competing CPU hog is present the whole time, and our process is
    // busy rendering throughout (so its CPU share is observable).
    lab.sim.net.cpu_spawn_hog(src);
    lab.sim
        .net
        .cpu_start_work(src, proc, SimDelta::from_secs(60));

    // Observe the CPU share and edge-router state as time passes.
    for t in [1u64, 6, 13] {
        lab.run_until(SimTime::from_secs(t));
        let share = lab.sim.net.cpu_share_of(src, proc);
        let rules = lab.sim.net.node(lab.routers[0]).classifier.len();
        let status = lab.with_gara(|g, _| g.status(ids[0]).unwrap());
        println!(
            "t={t:>2}s: network reservation {status:?}, edge rules {rules}, cpu share {share:.2}"
        );
    }

    let final_status = lab.with_gara(|g, _| g.status(ids[0]).unwrap());
    assert_eq!(final_status, Status::Expired);
    println!("the reservation expired on schedule and its enforcement was removed.");
}
