//! The paper's §4.2 future work, implemented: "an MPI program can select
//! from among alternative resources, according to their availability, and
//! adapt execution strategies or change reservations if reservations
//! cannot be satisfied."
//!
//! Two jobs arrive in sequence. The first takes most of the premium
//! capacity. The second queries the bandwidth broker, finds its preferred
//! rate unavailable, and negotiates down a preference list — adapting its
//! frame rate to the reservation it actually obtained.
//!
//! ```text
//! cargo run --release --example adaptive_negotiation
//! ```

use mpichgq::apps::GarnetLab;
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::{JobBuilder, Mpi, Poll};
use mpichgq::netsim::GarnetCfg;
use mpichgq::sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7); // ~108 Mb/s reservable

    // Job A: a big premium consumer on the premium host pair.
    let (builder_a, env_a) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env_a2 = env_a.clone();
    let mut done_a = false;
    let a0 = move |mpi: &mut Mpi| {
        if !done_a {
            done_a = true;
            let w = mpi.comm_world();
            mpi.attr_put(
                w,
                env_a2.keyval(),
                Rc::new(QosAttribute::premium(80_000.0, 64_000)),
            );
            println!("job A: requested 80 Mb/s -> {:?}", env_a2.outcome(mpi, w));
        }
        Poll::Done
    };
    builder_a
        .rank(lab.premium_src, Box::new(a0))
        .rank(lab.premium_dst, Box::new(|_: &mut Mpi| Poll::Done))
        .base_port(11_000)
        .launch(&mut lab.sim);
    lab.run_until(SimTime::from_secs(1));

    // Job B: on the competitive host pair (same trunks), adapts.
    let (builder_b, env_b) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
    let env_b2 = env_b.clone();
    let picked = Rc::new(RefCell::new(None));
    let picked2 = picked.clone();
    let mut done_b = false;
    let b0 = move |mpi: &mut Mpi| {
        if !done_b {
            done_b = true;
            let w = mpi.comm_world();
            let avail = env_b2.available_bandwidth(mpi, w).unwrap();
            println!(
                "job B: broker reports {:.1} Mb/s premium available",
                avail as f64 / 1e6
            );
            // Preference list: 30 fps, 15 fps, 5 fps variants of the pipeline.
            let alternatives = [
                QosAttribute::premium(48_000.0, 200_000), // 30 fps
                QosAttribute::premium(24_000.0, 200_000), // 15 fps
                QosAttribute::premium(8_000.0, 200_000),  // 5 fps
            ];
            let choice = env_b2.negotiate(mpi, w, &alternatives);
            *picked2.borrow_mut() = choice;
            match choice {
                Some(i) => {
                    let fps = [30, 15, 5][i];
                    println!(
                        "job B: granted alternative {i} ({} Mb/s) -> running at {fps} fps",
                        alternatives[i].bandwidth_kbps / 1000.0
                    );
                }
                None => println!("job B: nothing fit; falling back to best-effort"),
            }
        }
        Poll::Done
    };
    builder_b
        .rank(lab.competitive_src, Box::new(b0))
        .rank(lab.competitive_dst, Box::new(|_: &mut Mpi| Poll::Done))
        .base_port(12_000)
        .launch(&mut lab.sim);
    lab.run_until(SimTime::from_secs(2));

    // With ~108 reservable and ~82 (80 Mb/s + overhead) taken, the 48 and
    // 24 Mb/s requests (plus overhead) do not fit; 8 Mb/s does.
    assert_eq!(
        *picked.borrow(),
        Some(2),
        "job B should land on the 5 fps variant"
    );
    println!("\nthe program adapted its execution strategy to the reservation it could get.");
}
