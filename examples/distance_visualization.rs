//! The paper's motivating application (§5.3): a distance-visualization
//! pipeline streaming fixed-size frames at a fixed rate across the wide
//! area, with QoS supplied through the MPI attribute mechanism.
//!
//! Prints the achieved-bandwidth trace with and without a premium
//! reservation, plus the effect of end-system traffic shaping on a bursty
//! (1 frame/s) variant — the §5.4 proposal.
//!
//! ```text
//! cargo run --release --example distance_visualization
//! ```

use mpichgq::apps::{finish_viz, GarnetLab, VizCfg, VizReceiver, VizSender};
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::JobBuilder;
use mpichgq::netsim::GarnetCfg;
use mpichgq::sim::{SimDelta, SimTime};
use mpichgq::tcp::TcpCfg;

struct RunCfg {
    frame_bytes: u32,
    fps: f64,
    reservation_kbps: f64,
    shape: bool,
}

fn run(cfg: RunCfg) -> (mpichgq::sim::TimeSeries, u64) {
    let end = SimTime::from_secs(15);
    let mut lab = GarnetLab::new(GarnetCfg::default(), 0.7);
    lab.add_contention(150_000_000, SimTime::ZERO, end);

    let agent = QosAgentCfg {
        shape_at_source: cfg.shape,
        ..QosAgentCfg::default()
    };
    let (builder, env) = enable_qos(JobBuilder::new(), agent);
    let qos = (cfg.reservation_kbps > 0.0).then(|| {
        (
            env,
            QosAttribute::premium(cfg.reservation_kbps, cfg.frame_bytes),
        )
    });

    let vcfg = VizCfg {
        frame_bytes: cfg.frame_bytes,
        fps: cfg.fps,
        work_per_frame: SimDelta::ZERO,
        start: SimTime::from_millis(500),
        end,
    };
    let (tx, _stats, _proc) = VizSender::new(vcfg, qos);
    let (rx, meter, frames) = VizReceiver::new(SimDelta::from_secs(1), end);
    // Era-faithful TCP: the paper's Solaris endpoints had ~500 ms minimum
    // retransmission timeouts, which is what makes bursty flows pay for
    // shallow token buckets.
    let tcp = TcpCfg {
        rto_min: SimDelta::from_millis(500),
        ..TcpCfg::default()
    };
    builder
        .rank(lab.premium_src, Box::new(tx))
        .rank(lab.premium_dst, Box::new(rx))
        .cfg(mpichgq::mpi::MpiCfg {
            tcp,
            ..Default::default()
        })
        .launch(&mut lab.sim);
    lab.run_until(end);
    let run = finish_viz(meter, frames, end, SimTime::from_secs(5), end);
    (run.series, run.frames_received)
}

fn main() {
    println!("distance visualization: 20 KB frames at 10 frames/s (1.6 Mb/s attempted)\n");
    for (label, resv) in [("best-effort", 0.0), ("premium 1.8 Mb/s", 1_800.0)] {
        let (series, frames) = run(RunCfg {
            frame_bytes: 20_000,
            fps: 10.0,
            reservation_kbps: resv,
            shape: false,
        });
        println!("{label}: {frames} frames delivered");
        print!("  bandwidth trace (Kb/s):");
        for (_, v) in series.points() {
            print!(" {v:.0}");
        }
        println!("\n");
    }

    println!("bursty variant: 100 KB frames at 1 frame/s (800 Kb/s), tight 1 Mb/s reservation");
    for (label, shape) in [("policed only", false), ("with end-system shaping", true)] {
        let (_, frames) = run(RunCfg {
            frame_bytes: 100_000,
            fps: 1.0,
            reservation_kbps: 1_000.0,
            shape,
        });
        println!("  {label}: {frames} frames delivered of ~14 offered");
    }
    println!("\nshaping smooths the burst through the normal-depth token bucket (§5.4).");
}
