//! The paper's §3 motivating example as a runnable program: a
//! finite-difference stencil across two 8-host sites, whose 100 KB halo
//! bursts defeat an "average rate" premium reservation — and the remedies.
//!
//! ```text
//! cargo run --release --example finite_difference
//! ```

use mpichgq::apps::{
    steady_iteration_rate, StencilCfg, StencilRank, TwoSites, UdpBlaster, UdpSink,
};
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute};
use mpichgq::mpi::JobBuilder;
use mpichgq::netsim::DepthRule;
use mpichgq::sim::{SimDelta, SimTime};
use mpichgq::tcp::TcpCfg;

struct Case {
    label: &'static str,
    contention: bool,
    qos_kbps: Option<f64>,
    depth: DepthRule,
}

fn run(case: &Case) -> f64 {
    // Two sites of 8 hosts around a 10 Mb/s wide-area VC (5 ms).
    let mut ts = TwoSites::build(8, 10_000_000, SimTime::from_millis(5), 0.7);
    if case.contention {
        let (sink, _m) = UdpSink::new(20_000, SimDelta::from_secs(1));
        let sink_host = ts.site_b[7];
        let src_host = ts.site_a[7];
        ts.sim.spawn_app(sink_host, Box::new(sink));
        ts.sim.spawn_app(
            src_host,
            Box::new(UdpBlaster::with_rate(sink_host, 20_000, 1472, 12_000_000)),
        );
    }
    let agent = QosAgentCfg {
        depth_rule: case.depth,
        translate_overhead: false,
        ..QosAgentCfg::default()
    };
    let (mut builder, env) = enable_qos(JobBuilder::new(), agent);
    // 100 KB halo, 0.8 s compute: 1 Mb/s average across the WAN.
    let cfg = StencilCfg {
        ranks: 16,
        iterations: 25,
        halo_bytes: 100_000,
        compute: SimDelta::from_millis(800),
    };
    let qos = case
        .qos_kbps
        .map(|kbps| (env, QosAttribute::premium(kbps, cfg.halo_bytes)));
    let (ranks, log) = StencilRank::job(cfg, qos);
    for (host, rank) in ts.hosts().into_iter().zip(ranks) {
        builder = builder.rank(host, Box::new(rank));
    }
    // Era TCP (coarse timers), as in the reproduction's experiments.
    let tcp = TcpCfg {
        rto_min: SimDelta::from_millis(500),
        ..TcpCfg::default()
    };
    builder
        .cfg(mpichgq::mpi::MpiCfg {
            tcp,
            ..Default::default()
        })
        .launch(&mut ts.sim);
    ts.sim.run_until(SimTime::from_secs(120));
    // A run that never finished has no steady state: report the effective
    // whole-horizon pace rather than an optimistic intra-burst rate.
    let done = log.borrow().len();
    if done < 25 {
        done as f64 / 120.0
    } else {
        steady_iteration_rate(&log)
    }
}

fn main() {
    println!("finite-difference stencil, 2 sites x 8 ranks, 100 KB halos, 1 Mb/s average WAN rate");
    println!("(compute-bound ideal: 1.25 iterations/s)\n");
    let cases = [
        Case {
            label: "baseline (no contention)",
            contention: false,
            qos_kbps: None,
            depth: DepthRule::Normal,
        },
        Case {
            label: "WAN contention, best-effort",
            contention: true,
            qos_kbps: None,
            depth: DepthRule::Normal,
        },
        Case {
            label: "premium 1 Mb/s, bw/40 bucket",
            contention: true,
            qos_kbps: Some(1_000.0),
            depth: DepthRule::Normal,
        },
        Case {
            label: "premium 1 Mb/s, bw/4 bucket",
            contention: true,
            qos_kbps: Some(1_000.0),
            depth: DepthRule::Large,
        },
    ];
    for case in &cases {
        let rate = run(case);
        println!("  {:<34} {rate:.2} iterations/s", case.label);
    }
    println!("\nthe 'average rate' reservation is a trap for bursty MPI traffic (§3);");
    println!("the bucket must be sized for the burst, not the mean.");
}
