//! Admission control under a reservation storm: several MPI jobs compete
//! for the premium capacity of one trunk; the bandwidth broker admits what
//! fits and refuses the rest, and admitted flows are protected while
//! refused ones share best-effort scraps with the storm.
//!
//! Also demonstrates building a custom topology (three site pairs around a
//! two-router core) rather than using the GARNET preset.
//!
//! ```text
//! cargo run --release --example contention_storm
//! ```

use mpichgq::apps::{PingPong, UdpBlaster, UdpSink};
use mpichgq::core::{enable_qos, QosAgentCfg, QosAttribute, QosOutcome};
use mpichgq::gara::{install, Gara};
use mpichgq::mpi::JobBuilder;
use mpichgq::netsim::{LinkCfg, NodeId, QueueCfg, TopoBuilder};
use mpichgq::sim::{SimDelta, SimTime};
use mpichgq::tcp::Sim;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // --- custom topology: 4 source hosts, 4 sink hosts, 2 routers -------
    let mut b = TopoBuilder::new(0xBEEF);
    let srcs: Vec<NodeId> = (0..4).map(|i| b.host(&format!("site-a{i}"))).collect();
    let r1 = b.router("edge-a");
    let r2 = b.router("edge-b");
    let dsts: Vec<NodeId> = (0..4).map(|i| b.host(&format!("site-b{i}"))).collect();
    let access = LinkCfg::fast_ethernet(SimDelta::from_micros(50));
    for &h in &srcs {
        b.link(h, r1, access, QueueCfg::priority_default());
    }
    for &h in &dsts {
        b.link(h, r2, access, QueueCfg::priority_default());
    }
    // A 30 Mb/s wide-area VC is the contended trunk.
    let trunk = LinkCfg::atm_vc(30_000_000, SimDelta::from_millis(2));
    b.link(r1, r2, trunk, QueueCfg::priority_default());

    let mut sim = Sim::new(b.build());
    let mut gara = Gara::new();
    gara.manage_core_links(&sim.net, 0.5); // 15 Mb/s reservable premium
    install(&mut sim.stack, gara);

    // --- the storm: saturate the trunk with best-effort UDP -------------
    let (sink, _meter) = UdpSink::new(20_000, SimDelta::from_secs(1));
    sim.spawn_app(dsts[3], Box::new(sink));
    sim.spawn_app(
        srcs[3],
        Box::new(UdpBlaster::with_rate(dsts[3], 20_000, 1472, 35_000_000)),
    );

    // --- three MPI jobs, each requesting 6 Mb/s premium ------------------
    let end = SimTime::from_secs(12);
    let mut results = Vec::new();
    let mut outcomes = Vec::new();
    for j in 0..3 {
        let (builder, env) = enable_qos(JobBuilder::new(), QosAgentCfg::default());
        let outcome = Rc::new(RefCell::new(None));
        outcomes.push(outcome.clone());
        // Wrap rank 0 so we can capture the grant outcome after the put.
        let qos = Some((env.clone(), QosAttribute::premium(6_000.0, 30_000)));
        let (p0, p1, result) = PingPong::pair(30_000, SimTime::from_secs(2), end, qos);
        results.push(result);
        struct Watch {
            inner: PingPong,
            env: mpichgq::core::QosEnv,
            out: Rc<RefCell<Option<QosOutcome>>>,
        }
        impl mpichgq::mpi::MpiProgram for Watch {
            fn poll(&mut self, mpi: &mut mpichgq::mpi::Mpi) -> mpichgq::mpi::Poll {
                let r = self.inner.poll(mpi);
                if self.out.borrow().is_none() {
                    *self.out.borrow_mut() = Some(self.env.outcome(mpi, mpi.comm_world()));
                }
                r
            }
        }
        builder
            .rank(
                srcs[j],
                Box::new(Watch {
                    inner: p0,
                    env,
                    out: outcome,
                }),
            )
            .rank(dsts[j], Box::new(p1))
            .base_port((10_000 + 100 * j) as u16)
            .launch(&mut sim);
    }

    sim.run_until(end);

    println!("three jobs requested 6 Mb/s premium each; 15 Mb/s was reservable:\n");
    let mut granted = 0;
    for (j, (outcome, result)) in outcomes.iter().zip(&results).enumerate() {
        let out = outcome.borrow().clone().unwrap();
        let kbps = result.borrow().one_way_kbps();
        let verdict = match &out {
            QosOutcome::Granted { network_rate_bps } => {
                granted += 1;
                format!(
                    "granted ({:.1} Mb/s installed)",
                    *network_rate_bps as f64 / 1e6
                )
            }
            QosOutcome::Degraded { network_rate_bps } => {
                format!(
                    "degraded ({:.1} Mb/s installed)",
                    *network_rate_bps as f64 / 1e6
                )
            }
            QosOutcome::Denied { reason } => format!("DENIED: {reason}"),
            QosOutcome::None => "no request".into(),
        };
        println!("  job {j}: {verdict:<55} achieved {kbps:>7.0} Kb/s");
    }
    assert_eq!(granted, 2, "the broker admits exactly two 6 Mb/s requests");
    println!("\nadmission control kept the premium class within its budget;");
    println!("the denied job shares best-effort leftovers with the storm.");
}
