#!/usr/bin/env python3
"""Compare a fresh bench_engine run against the committed baseline.

Usage: perf_gate.py BASELINE.json FRESH.json [--tolerance 0.25]

Fails (exit 1) if any workload present in both files regressed by more
than the tolerance in calendar-backend events/sec. Workloads present in
only one file (e.g. a --quick run emits a subset) are compared only on
the intersection. The heap backend is reported but not gated: the
calendar scheduler is the default, so it is the number that matters.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w for w in doc["workloads"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    common = sorted(set(base) & set(fresh))
    if not common:
        print("perf_gate: no common workloads between baseline and fresh run",
              file=sys.stderr)
        return 1

    failed = []
    for name in common:
        b = base[name]["calendar"]["events_per_sec"]
        f = fresh[name]["calendar"]["events_per_sec"]
        ratio = f / b
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failed.append(name)
        print(f"{name:28s} baseline {b:14,.0f} ev/s   fresh {f:14,.0f} ev/s "
              f"  ({ratio:5.2f}x)  {status}")

    skipped = sorted((set(base) | set(fresh)) - set(common))
    if skipped:
        print(f"perf_gate: not in both files, skipped: {', '.join(skipped)}")

    if failed:
        print(f"perf_gate: FAIL — {', '.join(failed)} regressed more than "
              f"{args.tolerance:.0%} vs baseline", file=sys.stderr)
        return 1
    print(f"perf_gate: PASS — {len(common)} workload(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
