#!/usr/bin/env python3
"""Compare a fresh benchmark run against a committed baseline.

Usage: perf_gate.py BASELINE.json FRESH.json [--tolerance 0.25]

Understands both benchmark schemas and auto-detects each file's via its
"benchmark" field:

* bench_engine  — {"workloads": [{name, heap, calendar}, ...]}; the
  calendar backend's events/sec is the gated number (heap is informative
  only, since calendar is the default scheduler).
* bench_parallel — {"engine_compat": ..., "scaling": {"runs": [...]}};
  engine_compat is the bench_engine transport_multiflow_bulk workload
  run monolithically (so it can be gated *across files* against a
  bench_engine baseline — that is the "single-thread within tolerance of
  the old engine" acceptance check), and each scaling run gates at its
  thread count.
* bench_gara — {"workloads": [{name, reservations_per_sec,
  admission_p99_us, ...}, ...]}; each workload gates two metrics:
  reservations/sec (higher is better) and the p99 admission latency
  (LOWER is better — the ratio is inverted before comparison, with
  +1 µs smoothing so sub-microsecond baselines never divide by zero).

Every workload present in both files is compared; ALL regressions beyond
the tolerance are reported with their deltas before the nonzero exit, so
one failure never masks another. Workloads present in only one file
(e.g. a --quick run emits a subset) are compared on the intersection.
"""

import argparse
import json
import sys


def load(path):
    """Normalize one benchmark file to
    {metric name: (value, unit, higher_is_better)}."""
    with open(path) as f:
        doc = json.load(f)
    kind = doc.get("benchmark", "bench_engine")
    rates = {}
    if kind == "bench_parallel":
        compat = doc["engine_compat"]
        rates[compat["name"]] = (compat["calendar"]["events_per_sec"], "ev/s", True)
        scaling = doc["scaling"]
        for run in scaling["runs"]:
            name = f"{scaling['name']}@{run['threads']}t"
            rates[name] = (run["events_per_sec"], "ev/s", True)
    elif kind == "bench_gara":
        for w in doc["workloads"]:
            rates[f"{w['name']}/rps"] = (w["reservations_per_sec"], "resv/s", True)
            rates[f"{w['name']}/p99"] = (w["admission_p99_us"], "us", False)
    else:
        for w in doc["workloads"]:
            # Entries labeled perf_gated: false (the instrumentation
            # overhead probe) are informative only — never compared.
            if not w.get("perf_gated", True):
                continue
            rates[w["name"]] = (w["calendar"]["events_per_sec"], "ev/s", True)
    return rates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    common = sorted(set(base) & set(fresh))
    if not common:
        print("perf_gate: no common workloads between baseline and fresh run",
              file=sys.stderr)
        return 1

    failed = []
    for name in common:
        b, unit, higher_better = base[name]
        f = fresh[name][0]
        if higher_better:
            ratio = f / b
        else:
            # Lower is better (latency): invert so ratio > 1 still means
            # "fresh is better"; +1 smooths away zero-microsecond bases.
            ratio = (b + 1.0) / (f + 1.0)
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failed.append((name, ratio))
        print(f"{name:28s} baseline {b:14,.0f} {unit:6s} fresh {f:14,.0f} {unit:6s}"
              f"  ({ratio:5.2f}x)  {status}")

    skipped = sorted((set(base) | set(fresh)) - set(common))
    if skipped:
        print(f"perf_gate: not in both files, skipped: {', '.join(skipped)}")

    if failed:
        deltas = ", ".join(f"{name} ({(1 - ratio):.1%} below baseline)"
                           for name, ratio in failed)
        print(f"perf_gate: FAIL — {len(failed)} of {len(common)} workload(s) "
              f"regressed more than {args.tolerance:.0%}: {deltas}",
              file=sys.stderr)
        return 1
    print(f"perf_gate: PASS — {len(common)} workload(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
