#!/usr/bin/env python3
"""Validate results/<experiment>/metrics.json files against the schema
documented in DESIGN.md §9 (§10 for the chaos experiment, §11 for
lifecycle histograms and SLO conformance).

Usage: check_metrics.py results/fig1/metrics.json [more.json ...]

Checks, per file:
- parses as JSON with top-level "counters", "gauges", "trace" objects;
- counters are non-negative integers;
- gauges are {"value": number, "high_water": number} objects;
- the trace carries capacity/recorded/dropped and a list of events with
  monotonically non-decreasing "t_ns" timestamps;
- when present, "histograms" entries are valid snapshots (bucket counts
  sum to "count", quantiles ordered p50 <= p90 <= p99) and "slo" is a
  conformance table whose total_misses equals the per-flow sum;
- the core engine/net counters every simulation run must emit exist;
- experiment-specific keys exist (e.g. the chaos run's adaptation
  counters and fault counters; the traced runs' per-flow delay
  histograms and deadline rows; the gara run's reservation-lifecycle
  counters, per-reason reject breakdown, and populated
  admission-latency histogram).

Files whose top level carries "qcheck_summary" (the scenario fuzzer's
batch report, results/qcheck/summary.json) are validated against the
qcheck summary schema instead (DESIGN.md §12). Files whose top level
carries "timeline" are validated against the fixed-interval time-series
schema (DESIGN.md §16): delta-encoded timestamps with strictly positive
gaps, counter columns non-negative, gauge columns one value per sample.
Experiments marked with "timeline" in REQUIRED_BY_EXPERIMENT must also
ship a sibling timeline.json next to their metrics.json.

All problems in a file are collected and reported together — a missing
section or key never aborts the remaining checks, so one run lists
every violation at once.
"""

import json
import os
import sys

REQUIRED_COUNTERS = [
    "engine.events_processed",
    "net.pkts.sent",
    "net.pkts.delivered",
    "net.drops.policed",
    "net.drops.queue_full",
]

# Extra keys required when validating a specific experiment's snapshot,
# selected by the name of the directory holding metrics.json
# (results/<experiment>/metrics.json).
REQUIRED_BY_EXPERIMENT = {
    "chaos": {
        "counters": [
            "agent.requests",
            "agent.rejects",
            "agent.retries",
            "agent.grants",
            "agent.revocations_seen",
            "agent.renegotiations",
            "agent.degrades",
            "agent.probes",
            "agent.recoveries",
            "gara.reservations_granted",
            "gara.reservations_rejected",
            "gara.injected_rejections",
            "gara.revocations",
            "faults.drops.link_down",
            "faults.drops.loss",
            "faults.drops.corrupt",
            "faults.link_downs",
            "faults.link_ups",
        ],
        "gauges": [
            "agent.granted_rate_bps",
            "agent.dscp",
        ],
        # Lifecycle tracing is armed for the chaos run: per-flow delay
        # histograms and a deadline-carrying SLO table must be present,
        # and the run carries premium (EF-marked) traffic.
        "traced": True,
        "ef_traffic": True,
        "timeline": True,
    },
    # The rank-failure chaos run (DESIGN.md §17): rolling HostCrash /
    # HostRestart faults with checkpoint/restart recovery, the crash
    # release + restart re-reserve adaptation path, and the host-down
    # drop ledger, with every premium pair deadline-scored by the SLO
    # layer.
    "chaos_ranks": {
        "counters": [
            "agent.requests",
            "agent.grants",
            "agent.crash_releases",
            "agent.restart_rereserves",
            "gara.reservations_granted",
            "faults.drops.host_down",
            "faults.host_crashes",
            "faults.host_restarts",
            "mpi.checkpoints",
            "mpi.reqs_failed",
            "slo.misses",
        ],
        "gauges": [
            "agent.granted_rate_bps",
        ],
        "traced": True,
        "ef_traffic": True,
        "timeline": True,
    },
    # The TCP sawtooth (fig1) is the canonical sampled run: its committed
    # timeline.json is the regression anchor for the time-series schema.
    "fig1": {"timeline": True},
    "fig7_10fps_40kb_frames": {"traced": True, "ef_traffic": True, "timeline": True},
    "fig7_1fps_400kb_frame": {"traced": True, "ef_traffic": True, "timeline": True},
    # fig8 is the CPU-contention scenario: traced, but no network
    # reservation ever marks EF, so its EF queue-wait histogram is
    # legitimately empty (and empty histograms are omitted).
    "fig8": {"traced": True},
    # The three-PHB conformance run (EF vs AF vs BE on a WFQ/WRED trunk,
    # DESIGN.md §15): AF traffic is marked and escalated at the edge, the
    # AF queue takes WRED early drops, and all three per-class queue-wait
    # histograms are populated.
    "af_conformance": {
        "counters": [
            "net.drops.red_early",
            "qdisc.early_drops.af",
            "qdisc.early_drops.be",
        ],
        "hists": [
            "phb.af.queue_wait_ns",
        ],
        "traced": True,
        "ef_traffic": True,
    },
    # The scheduler × dropper ablation matrix; the committed snapshot is
    # the WFQ × RED cell, so RED early drops and the SLO ledger of the
    # deadline-carrying premium flow must both be present.
    "qdisc_ablation": {
        "counters": [
            "slo.misses",
            "net.drops.red_early",
            "qdisc.early_drops.be",
        ],
        "traced": True,
        "ef_traffic": True,
    },
    # bench_gara's control-plane snapshot: the full reservation
    # lifecycle, the per-reason reject breakdown, and a populated
    # admission-latency histogram (DESIGN.md §14).
    "gara": {
        "counters": [
            "gara.reservations_granted",
            "gara.reservations_rejected",
            "gara.modifies",
            "gara.modifies_rejected",
            "gara.cancels",
            "gara.revocations",
            "gara.injected_rejections",
            "gara.rejects.over_capacity",
            "gara.rejects.unknown_slot",
            "gara.rejects.no_route",
            "gara.rejects.unknown_server",
            "gara.rejects.invalid",
            "gara.rejects.injected",
        ],
        "hists": [
            "gara.admission_ns",
        ],
    },
}


def experiment_name(path):
    """results/chaos/metrics.json -> "chaos" (or None if unrecognized)."""
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    return parent if parent in REQUIRED_BY_EXPERIMENT else None


def check_counters(doc, errors, extra_required, exp):
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append("missing or non-object section 'counters'")
        counters = {}
    for name, v in counters.items():
        if not isinstance(v, int) or v < 0:
            errors.append(f"counter {name!r} is not a non-negative integer: {v!r}")
    missing = [n for n in REQUIRED_COUNTERS + extra_required if n not in counters]
    if missing:
        errors.append(
            f"{len(missing)} required counter(s) missing for experiment "
            f"{exp!r}: " + ", ".join(missing)
        )


def check_gauges(doc, errors, extra_required, exp):
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        errors.append("missing or non-object section 'gauges'")
        gauges = {}
    for name, g in gauges.items():
        if not isinstance(g, dict) or set(g) != {"value", "high_water"}:
            errors.append(f"gauge {name!r} is not {{value, high_water}}: {g!r}")
            continue
        if not all(isinstance(g[k], (int, float)) for k in g):
            errors.append(f"gauge {name!r} has non-numeric fields: {g!r}")
    missing = [n for n in extra_required if n not in gauges]
    if missing:
        errors.append(
            f"{len(missing)} required gauge(s) missing for experiment "
            f"{exp!r}: " + ", ".join(missing)
        )


def check_trace(doc, errors):
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        errors.append("missing or non-object section 'trace'")
        return
    missing = [f for f in ("capacity", "recorded", "dropped", "events") if f not in trace]
    if missing:
        errors.append("trace missing field(s): " + ", ".join(missing))
    events = trace.get("events", [])
    if len(events) > trace.get("capacity", 0):
        errors.append("trace holds more events than its capacity")
    last_t = -1
    for e in events:
        if set(e) != {"t_ns", "kind", "key", "value"}:
            errors.append(f"malformed trace event: {e!r}")
            break
        if e["t_ns"] < last_t:
            errors.append(f"trace timestamps not monotonic at {e!r}")
            break
        last_t = e["t_ns"]


def check_histograms(doc, errors, traced, ef_traffic, extra_required, exp):
    hists = doc.get("histograms")
    if hists is None:
        if traced:
            errors.append("missing 'histograms' section (tracing was armed)")
        if extra_required:
            errors.append(
                f"{len(extra_required)} required histogram(s) missing for "
                f"experiment {exp!r} (no 'histograms' section): "
                + ", ".join(extra_required)
            )
        return
    if not isinstance(hists, dict):
        errors.append("'histograms' is not an object")
        return
    for name, h in hists.items():
        if not isinstance(h, dict) or "count" not in h or "buckets" not in h:
            errors.append(f"histogram {name!r} is not a snapshot object: {h!r}")
            continue
        count = h["count"]
        bucket_sum = sum(b[1] for b in h["buckets"])
        if bucket_sum != count:
            errors.append(
                f"histogram {name!r}: bucket counts sum to {bucket_sum}, "
                f"count says {count}"
            )
        if count > 0:
            missing = [k for k in ("min", "max", "p50", "p90", "p99") if k not in h]
            if missing:
                errors.append(f"histogram {name!r} missing: " + ", ".join(missing))
            elif not (h["p50"] <= h["p90"] <= h["p99"]):
                errors.append(f"histogram {name!r}: quantiles not ordered")
            if any(b[1] == 0 for b in h["buckets"]):
                errors.append(f"histogram {name!r} stores empty buckets")
    missing = [
        n for n in extra_required if n not in hists or hists[n].get("count", 0) == 0
    ]
    if missing:
        errors.append(
            f"{len(missing)} required histogram(s) missing or empty for "
            f"experiment {exp!r}: " + ", ".join(missing)
        )
    if traced:
        flow_delay = [
            n for n, h in hists.items()
            if n.startswith("flow.") and n.endswith(".delay_ns") and h.get("count", 0) > 0
        ]
        if not flow_delay:
            errors.append("no populated flow.*.delay_ns histogram")
        required_phb = ["phb.be.queue_wait_ns"]
        if ef_traffic:
            required_phb.append("phb.ef.queue_wait_ns")
        for phb in required_phb:
            if phb not in hists:
                errors.append(f"missing per-class histogram {phb!r}")


def check_slo(doc, errors, traced):
    slo = doc.get("slo")
    if slo is None:
        if traced:
            errors.append("missing 'slo' section (tracing was armed)")
        return
    if not isinstance(slo, dict) or "flows" not in slo or "total_misses" not in slo:
        errors.append(f"'slo' is not {{flows, total_misses}}: {slo!r}")
        return
    miss_sum = 0
    with_deadline = 0
    row_keys = {
        "flow", "deadline_ns", "delivered", "misses", "miss_streak_max",
        "worst_delay_ns",
    }
    for f in slo["flows"]:
        if set(f) != row_keys:
            errors.append(f"malformed SLO row: {f!r}")
            continue
        miss_sum += f["misses"]
        if f["deadline_ns"] is not None:
            with_deadline += 1
            if f["misses"] > f["delivered"]:
                errors.append(f"SLO row {f['flow']!r}: more misses than deliveries")
    if slo["total_misses"] != miss_sum:
        errors.append(
            f"slo.total_misses {slo['total_misses']} != per-flow sum {miss_sum}"
        )
    if traced and with_deadline == 0:
        errors.append("no SLO row carries a deadline")


def check_qcheck_summary(doc, errors):
    """Schema of results/qcheck/summary.json (the fuzzer's batch report)."""
    if doc.get("qcheck_summary") != 1:
        errors.append(f"unsupported qcheck_summary schema: {doc.get('qcheck_summary')!r}")
    for k in ("seeds", "violations"):
        if not isinstance(doc.get(k), int) or doc.get(k, -1) < 0:
            errors.append(f"{k!r} is not a non-negative integer: {doc.get(k)!r}")
    failed = doc.get("failed_seeds")
    if not isinstance(failed, list) or not all(isinstance(s, int) for s in failed):
        errors.append(f"'failed_seeds' is not a list of integers: {failed!r}")
    elif isinstance(doc.get("seeds"), int) and len(failed) > doc["seeds"]:
        errors.append("more failed seeds than seeds run")
    elif isinstance(doc.get("violations"), int) and len(failed) > doc["violations"]:
        errors.append("more failed seeds than violations")
    totals = doc.get("totals")
    if not isinstance(totals, dict) or set(totals) != {"events", "sent", "delivered"}:
        errors.append(f"'totals' is not {{events, sent, delivered}}: {totals!r}")
        return
    for k, v in totals.items():
        if not isinstance(v, int) or v < 0:
            errors.append(f"totals.{k} is not a non-negative integer: {v!r}")
    if all(isinstance(totals.get(k), int) for k in ("sent", "delivered")):
        if totals["delivered"] > totals["sent"]:
            errors.append("totals.delivered exceeds totals.sent")


def check_timeline_doc(doc, errors):
    """Schema of results/<exp>/timeline.json (DESIGN.md §16) — the same
    shape gate `qtop --check` enforces, so CI catches drift in either
    tool."""
    if doc.get("timeline") != 1:
        errors.append(f"unsupported timeline schema: {doc.get('timeline')!r}")
    interval = doc.get("interval_ns")
    if not isinstance(interval, int) or interval <= 0:
        errors.append(f"'interval_ns' is not a positive integer: {interval!r}")
    series = doc.get("series")
    if not isinstance(series, dict) or not series:
        errors.append(f"'series' is not a non-empty object: {type(series).__name__}")
        return
    names = list(series)
    if names != sorted(names):
        errors.append("series are not name-sorted")
    for name, s in series.items():
        kind = s.get("kind") if isinstance(s, dict) else None
        if kind not in ("counter", "gauge"):
            errors.append(f"series {name!r}: unknown kind {kind!r}")
            continue
        if s.get("t0_ns") is None:
            errors.append(f"series {name!r}: empty (null t0_ns)")
            continue
        dt = s.get("dt_ns")
        if not isinstance(dt, list) or not all(
            isinstance(d, int) and d > 0 for d in dt
        ):
            errors.append(f"series {name!r}: dt_ns is not positive integers")
            continue
        if kind == "counter":
            v0, dv = s.get("v0"), s.get("dv")
            if not isinstance(v0, int) or v0 < 0:
                errors.append(f"series {name!r}: v0 is not a non-negative integer")
            if not isinstance(dv, list) or len(dv) != len(dt):
                errors.append(f"series {name!r}: dv length != dt_ns length")
            elif not all(isinstance(d, int) and d >= 0 for d in dv):
                errors.append(f"series {name!r}: counter decreased (negative dv)")
        else:
            values = s.get("values")
            if not isinstance(values, list) or len(values) != len(dt) + 1:
                errors.append(f"series {name!r}: values length != samples")
            elif not all(isinstance(v, (int, float)) for v in values):
                errors.append(f"series {name!r}: non-numeric gauge value")


def check_sibling_timeline(path, errors):
    """Experiments flagged "timeline" commit a timeline.json next to
    their metrics.json; require it and validate its schema in place."""
    sibling = os.path.join(os.path.dirname(os.path.abspath(path)), "timeline.json")
    try:
        with open(sibling) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"sibling timeline.json unreadable or invalid: {exc}")
        return
    sub = []
    check_timeline_doc(doc, sub)
    errors.extend(f"timeline.json: {e}" for e in sub)


def check(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"], None
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], None

    if "qcheck_summary" in doc:
        check_qcheck_summary(doc, errors)
        return errors, doc

    if "timeline" in doc:
        check_timeline_doc(doc, errors)
        return errors, doc

    exp = experiment_name(path) or "generic"
    extra = REQUIRED_BY_EXPERIMENT.get(exp, {})
    check_counters(doc, errors, extra.get("counters", []), exp)
    check_gauges(doc, errors, extra.get("gauges", []), exp)
    check_trace(doc, errors)
    traced = extra.get("traced", False)
    check_histograms(doc, errors, traced, extra.get("ef_traffic", False),
                     extra.get("hists", []), exp)
    check_slo(doc, errors, traced)
    if extra.get("timeline", False):
        check_sibling_timeline(path, errors)
    return errors, doc


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors, doc = check(path)
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        elif "qcheck_summary" in doc:
            print(f"{path}: ok [qcheck summary schema] "
                  f"({doc['seeds']} seeds, {doc['violations']} violations, "
                  f"{doc['totals']['events']} events)")
        elif "timeline" in doc:
            samples = max(
                (len(s.get("dt_ns", [])) + 1 for s in doc["series"].values()),
                default=0,
            )
            print(f"{path}: ok [timeline schema] "
                  f"({len(doc['series'])} series, {samples} samples max, "
                  f"interval {doc['interval_ns']} ns)")
        else:
            schema = experiment_name(path) or "generic"
            print(f"{path}: ok [{schema} schema] "
                  f"({len(doc['counters'])} counters, "
                  f"{len(doc['gauges'])} gauges, "
                  f"{len(doc['trace'].get('events', []))} trace events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
