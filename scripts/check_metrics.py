#!/usr/bin/env python3
"""Validate results/<experiment>/metrics.json files against the schema
documented in DESIGN.md §9.

Usage: check_metrics.py results/fig1/metrics.json [more.json ...]

Checks, per file:
- parses as JSON with top-level "counters", "gauges", "trace" objects;
- counters are non-negative integers;
- gauges are {"value": number, "high_water": number} objects;
- the trace carries capacity/recorded/dropped and a list of events with
  monotonically non-decreasing "t_ns" timestamps;
- the core engine/net counters every simulation run must emit exist.
"""

import json
import sys

REQUIRED_COUNTERS = [
    "engine.events_processed",
    "net.pkts.sent",
    "net.pkts.delivered",
    "net.drops.policed",
    "net.drops.queue_full",
]


def check(path):
    errors = []
    with open(path) as f:
        doc = json.load(f)

    for section in ("counters", "gauges", "trace"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"missing or non-object section {section!r}")
    if errors:
        return errors

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            errors.append(f"counter {name!r} is not a non-negative integer: {v!r}")
    for name in REQUIRED_COUNTERS:
        if name not in doc["counters"]:
            errors.append(f"required counter {name!r} missing")

    for name, g in doc["gauges"].items():
        if not isinstance(g, dict) or set(g) != {"value", "high_water"}:
            errors.append(f"gauge {name!r} is not {{value, high_water}}: {g!r}")
            continue
        if not all(isinstance(g[k], (int, float)) for k in g):
            errors.append(f"gauge {name!r} has non-numeric fields: {g!r}")

    trace = doc["trace"]
    for field in ("capacity", "recorded", "dropped", "events"):
        if field not in trace:
            errors.append(f"trace missing field {field!r}")
    events = trace.get("events", [])
    if len(events) > trace.get("capacity", 0):
        errors.append("trace holds more events than its capacity")
    last_t = -1
    for e in events:
        if set(e) != {"t_ns", "kind", "key", "value"}:
            errors.append(f"malformed trace event: {e!r}")
            break
        if e["t_ns"] < last_t:
            errors.append(f"trace timestamps not monotonic at {e!r}")
            break
        last_t = e["t_ns"]
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors = check(path)
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            with open(path) as f:
                doc = json.load(f)
            print(f"{path}: ok ({len(doc['counters'])} counters, "
                  f"{len(doc['gauges'])} gauges, "
                  f"{len(doc['trace'].get('events', []))} trace events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
