#!/usr/bin/env bash
# Regenerate every table/figure of the paper into results/.
# Full-resolution runs; pass --fast through for reduced sweeps.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p mpichgq-bench
mkdir -p results
BIN=target/release
FAST="${1:-}"
$BIN/garnet_info                > results/fig4.txt
$BIN/fig1_tcp_sawtooth   $FAST  > results/fig1.txt &
$BIN/fig7_seq_traces     $FAST  > results/fig7.txt &
$BIN/fig8_cpu_reservation $FAST > results/fig8.txt &
$BIN/fig9_combined       $FAST  > results/fig9.txt &
wait
$BIN/fig5_pingpong_sweep $FAST  > results/fig5.txt &
$BIN/fig6_viz_sweep      $FAST  > results/fig6.txt &
$BIN/table1_burstiness   $FAST  > results/table1.txt &
wait
$BIN/sec3_finite_difference $FAST > results/sec3.txt &
$BIN/ablations           $FAST  > results/ablations.txt &
$BIN/fig_chaos           $FAST  > results/chaos.txt &
wait
$BIN/fig_af_conformance  $FAST  > results/af_conformance.txt &
$BIN/fig_qdisc_ablation  $FAST  > results/qdisc_ablation.txt &
$BIN/fig_chaos_ranks     $FAST  > results/chaos_ranks.txt &
wait
echo "results/ refreshed:"
grep -H "^#" results/*.txt | grep -iE "summary|phases|adequate|penalty|saturate" || true
if command -v python3 >/dev/null; then
  python3 scripts/check_metrics.py results/*/metrics.json results/*/timeline.json
fi
