//! # mpichgq — umbrella crate for the MPICH-GQ reproduction
//!
//! Re-exports the public API of every subsystem crate so examples, tests,
//! and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event kernel
//! * [`netsim`] — packet network with Differentiated Services mechanisms
//! * [`tcp`] — TCP Reno and the socket/application interface
//! * [`dsrt`] — soft real-time CPU scheduler model
//! * [`gara`] — reservation architecture (slot tables, resource managers)
//! * [`mpi`] — the MPI subset (communicators, attributes, pt2pt, collectives)
//! * [`core`] — MPICH-GQ itself: the MPI QoS Agent and attribute machinery
//! * [`apps`] — the paper's workloads (ping-pong, distance visualization)
//! * [`qcheck`] — deterministic scenario fuzzer + cross-layer invariant auditor
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use mpichgq_apps as apps;
pub use mpichgq_core as core;
pub use mpichgq_dsrt as dsrt;
pub use mpichgq_gara as gara;
pub use mpichgq_mpi as mpi;
pub use mpichgq_netsim as netsim;
pub use mpichgq_qcheck as qcheck;
pub use mpichgq_sim as sim;
pub use mpichgq_tcp as tcp;
